module Lit = Cnf.Lit
module Clause = Cnf.Clause

type stats = {
  mutable units : int;
  mutable pures : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable failed_literals : int;
  mutable eliminated : int;
  mutable elim_clauses_removed : int;
  mutable elim_resolvents : int;
  mutable rounds : int;
}

type elimination = {
  evar : int;
  pos : Clause.t list;
  neg : Clause.t list;
}

type simplified = {
  formula : Cnf.Formula.t;
  fix : (int * bool) list;
  elim : elimination list;
  stats : stats;
}

type result = Unsat | Simplified of simplified

exception Found_unsat

type state = {
  nvars : int;
  mutable clauses : Clause.t list;
  assign : int array; (* var -> -1/0/1 *)
  mutable fix : (int * bool) list;
  mutable elim : elimination list; (* newest first *)
  emit : Types.proof_step -> unit; (* DRAT sink; a no-op without ?proof *)
  st : stats;
}

let lit_value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let fix_lit s reason l =
  let v = Lit.var l in
  match lit_value s l with
  | 1 -> ()
  | 0 -> raise Found_unsat
  | _ ->
    (* Unit and failed-literal fixes are RUP over the active clause set
       and enter the proof; pure literals are only RAT, so [run] rejects
       [pures] when a proof is requested. *)
    (match reason with
     | `Unit | `Failed -> s.emit (Types.Add (Clause.of_list [ l ]))
     | `Pure -> ());
    s.assign.(v) <- (if Lit.is_pos l then 1 else 0);
    s.fix <- (v, Lit.is_pos l) :: s.fix;
    (match reason with
     | `Unit -> s.st.units <- s.st.units + 1
     | `Pure -> s.st.pures <- s.st.pures + 1
     | `Failed -> s.st.failed_literals <- s.st.failed_literals + 1)

(* Remove satisfied clauses and false literals; fix unit clauses.
   Returns true when anything changed. *)
let simplify_clauses s =
  let changed = ref false in
  let rec stable () =
    let local = ref false in
    let keep c =
      let lits = Clause.to_list c in
      if List.exists (fun l -> lit_value s l = 1) lits then begin
        s.emit (Types.Delete c);
        local := true;
        None
      end
      else
        let free = List.filter (fun l -> lit_value s l <> 0) lits in
        match free with
        | [] -> raise Found_unsat
        | [ l ] ->
          fix_lit s `Unit l;
          s.emit (Types.Delete c);
          local := true;
          None
        | _ ->
          if List.length free < List.length lits then begin
            local := true;
            (* the stripped clause is RUP while the original is active:
               add first, then delete *)
            s.emit (Types.Add (Clause.of_list free));
            s.emit (Types.Delete c)
          end;
          Some (Clause.of_list free)
    in
    s.clauses <- List.filter_map keep s.clauses;
    if !local then begin
      changed := true;
      stable ()
    end
  in
  stable ();
  !changed

let pure_literals s =
  let occ = Array.make (2 * max 1 s.nvars) 0 in
  List.iter
    (fun c -> List.iter (fun l -> occ.(l) <- occ.(l) + 1) (Clause.to_list c))
    s.clauses;
  let changed = ref false in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 then begin
      let p = occ.(Lit.pos v) and q = occ.(Lit.neg_of_var v) in
      if p > 0 && q = 0 then begin
        fix_lit s `Pure (Lit.pos v);
        changed := true
      end
      else if q > 0 && p = 0 then begin
        fix_lit s `Pure (Lit.neg_of_var v);
        changed := true
      end
    end
  done;
  !changed

let occurrence_table s =
  let occ = Array.make (2 * max 1 s.nvars) [] in
  List.iteri
    (fun ci c -> List.iter (fun l -> occ.(l) <- ci :: occ.(l)) (Clause.to_list c))
    s.clauses;
  occ

let subsume_pass s =
  let arr = Array.of_list s.clauses in
  let alive = Array.make (Array.length arr) true in
  let occ = occurrence_table s in
  let changed = ref false in
  Array.iteri
    (fun ci c ->
       if alive.(ci) then begin
         (* candidates share c's rarest literal *)
         let rare =
           Clause.to_list c
           |> List.fold_left
                (fun best l ->
                   match best with
                   | Some b when List.length occ.(b) <= List.length occ.(l) -> best
                   | Some _ | None -> Some l)
                None
         in
         match rare with
         | None -> ()
         | Some l ->
           List.iter
             (fun cj ->
                if cj <> ci && alive.(cj) && Clause.size c <= Clause.size arr.(cj)
                   && Clause.subsumes c arr.(cj)
                then begin
                  alive.(cj) <- false;
                  s.emit (Types.Delete arr.(cj));
                  s.st.subsumed <- s.st.subsumed + 1;
                  changed := true
                end)
             occ.(l)
       end)
    arr;
  s.clauses <-
    Array.to_list arr
    |> List.filteri (fun i _ -> alive.(i));
  !changed

(* self-subsuming resolution: if d contains (c \ {l}) and ~l, drop ~l
   from d — the resolvent of c and d on l strengthens d *)
let strengthen_pass s =
  let arr = Array.of_list s.clauses |> Array.map (fun c -> ref c) in
  let occ = Array.make (2 * max 1 s.nvars) [] in
  Array.iteri
    (fun ci rc ->
       List.iter (fun l -> occ.(l) <- ci :: occ.(l)) (Clause.to_list !rc))
    arr;
  let changed = ref false in
  Array.iteri
    (fun ci rc ->
       List.iter
         (fun l ->
            let rest =
              List.filter (fun m -> not (Lit.equal m l)) (Clause.to_list !rc)
            in
            List.iter
              (fun cj ->
                 if cj <> ci then begin
                   let d = !(arr.(cj)) in
                   if Clause.mem (Lit.negate l) d
                      && List.for_all (fun m -> Clause.mem m d) rest
                   then begin
                     let d' =
                       Clause.of_list
                         (List.filter
                            (fun m -> not (Lit.equal m (Lit.negate l)))
                            (Clause.to_list d))
                     in
                     (* the resolvent is RUP while both parents are
                        active: add it before deleting the weaker one *)
                     s.emit (Types.Add d');
                     s.emit (Types.Delete d);
                     arr.(cj) := d';
                     s.st.strengthened <- s.st.strengthened + 1;
                     changed := true
                   end
                 end)
              occ.(Lit.negate l))
         (Clause.to_list !rc))
    arr;
  s.clauses <- Array.to_list arr |> List.map ( ! );
  !changed

(* --- bounded variable elimination ---------------------------------------- *)

(* The pass works over its own growable clause store with per-literal
   occurrence lists.  Clause slots are immutable once written: removing or
   strengthening a clause kills its slot and (for strengthening) adds the
   replacement under a fresh index, so an occurrence entry [i] in
   [occ.(l)] is valid exactly while [alive.(i)] holds.  Stale entries are
   skipped on traversal — the SatELite discipline, matching the solver's
   lazy watcher deletion. *)
let bve_pass s ~frozen ~clause_cap ~occ_cap =
  let nlits = 2 * max 1 s.nvars in
  let empty = Clause.of_list [] in
  let cl = ref (Array.make (max 16 (2 * List.length s.clauses)) empty) in
  let alive = ref (Array.make (Array.length !cl) false) in
  let n = ref 0 in
  let occ = Array.make nlits [] in
  let touched = Queue.create () in
  let changed = ref false in
  let grow () =
    let cap = 2 * Array.length !cl in
    let c2 = Array.make cap empty in
    Array.blit !cl 0 c2 0 !n;
    cl := c2;
    let a2 = Array.make cap false in
    Array.blit !alive 0 a2 0 !n;
    alive := a2
  in
  let push_raw c =
    if !n = Array.length !cl then grow ();
    let i = !n in
    !cl.(i) <- c;
    !alive.(i) <- true;
    n := i + 1;
    List.iter (fun l -> occ.(l) <- i :: occ.(l)) (Clause.to_list c);
    i
  in
  let kill i =
    !alive.(i) <- false;
    s.emit (Types.Delete !cl.(i))
  in
  (* Insert a clause simplified against the current fixed assignment:
     satisfied clauses vanish, false literals are dropped, units are
     fixed, tautologies are discarded outright.  The argument's content
     must already be active in the proof (an input clause, or a
     resolvent the caller just emitted), so any simplification emits
     its replacement before deleting the original. *)
  let add ~touch c =
    let lits = Clause.to_list c in
    if (not (Clause.is_tautology c))
       && not (List.exists (fun l -> lit_value s l = 1) lits)
    then begin
      let free = List.filter (fun l -> lit_value s l <> 0) lits in
      match free with
      | [] -> raise Found_unsat
      | [ l ] ->
        fix_lit s `Unit l;
        s.emit (Types.Delete c);
        changed := true
      | _ ->
        if List.length free < List.length lits then begin
          s.emit (Types.Add (Clause.of_list free));
          s.emit (Types.Delete c)
        end;
        let i = push_raw (Clause.of_list free) in
        if touch then Queue.add i touched
    end
    else if List.length lits > 0 && not (Clause.is_tautology c) then begin
      s.emit (Types.Delete c);
      changed := true (* a satisfied clause was dropped *)
    end
  in
  (* Backward subsumption and self-subsuming resolution seeded from one
     clause — run over every resolvent the elimination loop inserts. *)
  let backward ci =
    if !alive.(ci) then begin
      let c = !cl.(ci) in
      let lits = Clause.to_list c in
      (* subsumption candidates share c's rarest literal *)
      let rare =
        List.fold_left
          (fun best l ->
             match best with
             | Some b when List.length occ.(b) <= List.length occ.(l) -> best
             | Some _ | None -> Some l)
          None lits
      in
      (match rare with
       | None -> ()
       | Some l ->
         List.iter
           (fun cj ->
              if cj <> ci && !alive.(cj)
                 && Clause.size c <= Clause.size !cl.(cj)
                 && Clause.subsumes c !cl.(cj)
              then begin
                kill cj;
                s.st.subsumed <- s.st.subsumed + 1;
                changed := true
              end)
           occ.(l));
      (* self-subsumption: d ⊇ (c \ {l}) ∪ {¬l} loses ¬l *)
      List.iter
        (fun l ->
           if !alive.(ci) then begin
             let rest =
               List.filter (fun m -> not (Lit.equal m l)) lits
             in
             List.iter
               (fun cj ->
                  if cj <> ci && !alive.(cj) then begin
                    let d = !cl.(cj) in
                    if Clause.mem (Lit.negate l) d
                       && List.for_all (fun m -> Clause.mem m d) rest
                    then begin
                      let d' =
                        Clause.of_list
                          (List.filter
                             (fun m -> not (Lit.equal m (Lit.negate l)))
                             (Clause.to_list d))
                      in
                      (* emit the strengthened clause while both parents
                         are still active, then delete the weaker one *)
                      s.emit (Types.Add d');
                      kill cj;
                      s.st.strengthened <- s.st.strengthened + 1;
                      changed := true;
                      add ~touch:true d'
                    end
                  end)
               occ.(Lit.negate l)
           end)
        lits
    end
  in
  let drain () =
    while not (Queue.is_empty touched) do
      backward (Queue.pop touched)
    done
  in
  let try_eliminate v =
    if s.assign.(v) < 0 && not frozen.(v) then begin
      let lp = Lit.pos v and ln = Lit.neg_of_var v in
      let pos = List.filter (fun i -> !alive.(i)) occ.(lp) in
      let neg = List.filter (fun i -> !alive.(i)) occ.(ln) in
      let np = List.length pos and nn = List.length neg in
      if np + nn > 0 && np <= occ_cap && nn <= occ_cap then begin
        (* stage the resolvent set; abort if one resolvent exceeds the
           clause-size cap or the set outgrows the clauses removed *)
        let limit = np + nn in
        let resolve_pair i j =
          let ci =
            List.filter (fun l -> Lit.var l <> v) (Clause.to_list !cl.(i))
          in
          let cj =
            List.filter (fun l -> Lit.var l <> v) (Clause.to_list !cl.(j))
          in
          Clause.of_list (ci @ cj)
        in
        let stage pairs =
          let resolvents = ref [] in
          let count = ref 0 in
          let ok = ref true in
          (try
             List.iter
               (fun (i, j) ->
                  let r = resolve_pair i j in
                  if not (Clause.is_tautology r) then begin
                    if Clause.size r > clause_cap then begin
                      ok := false;
                      raise Exit
                    end;
                    incr count;
                    if !count > limit then begin
                      ok := false;
                      raise Exit
                    end;
                    resolvents := r :: !resolvents
                  end)
               pairs
           with Exit -> ());
          if !ok then Some (!resolvents, !count) else None
        in
        (* Definition substitution (SatELite): when [v] is the output of
           an AND/OR-shaped gate — one clause (p ∨ m₁ ∨ … ∨ mₖ) whose
           every [mᵢ] has a matching binary (¬p ∨ ¬mᵢ) — only gate ×
           non-gate resolvents are needed; non-gate × non-gate pairs are
           implied by them.  Tseitin-encoded netlists are full of such
           definitions, and the restricted set lets fanout variables be
           eliminated where the full product would blow the bound. *)
        let find_definition p side_p side_n =
          List.find_map
            (fun i ->
               let others =
                 List.filter (fun l -> not (Lit.equal l p))
                   (Clause.to_list !cl.(i))
               in
               if others = [] then None
               else
                 let bins =
                   List.map
                     (fun m ->
                        List.find_opt
                          (fun j ->
                             Clause.size !cl.(j) = 2
                             && List.exists (Lit.equal (Lit.negate m))
                                  (Clause.to_list !cl.(j)))
                          side_n)
                     others
                 in
                 if List.for_all Option.is_some bins then
                   Some (i, List.filter_map Fun.id bins)
                 else None)
            side_p
        in
        let substitution_pairs () =
          let pairs_for (def, bins) side_p side_n =
            let rest_n =
              List.filter (fun j -> not (List.mem j bins)) side_n
            in
            let rest_p = List.filter (fun i -> i <> def) side_p in
            List.map (fun j -> (def, j)) rest_n
            @ List.concat_map
                (fun b -> List.map (fun i -> (i, b)) rest_p)
                bins
          in
          match find_definition lp pos neg with
          | Some d -> Some (pairs_for d pos neg)
          | None -> (
              match find_definition ln neg pos with
              | Some d -> Some (pairs_for d neg pos)
              | None -> None)
        in
        let full_pairs =
          List.concat_map (fun i -> List.map (fun j -> (i, j)) neg) pos
        in
        let staged =
          match substitution_pairs () with
          | Some pairs -> stage pairs
          | None -> stage full_pairs
        in
        match staged with
        | None -> ()
        | Some (resolvents, count) ->
          (* commit: emit every resolvent into the proof while both
             parent sides are still active (each is RUP against them),
             push the removed clauses on the elimination stack
             (complete_model replays them), then swap in the
             resolvents *)
          List.iter (fun r -> s.emit (Types.Add r)) resolvents;
          s.elim <-
            { evar = v;
              pos = List.map (fun i -> !cl.(i)) pos;
              neg = List.map (fun i -> !cl.(i)) neg }
            :: s.elim;
          List.iter kill pos;
          List.iter kill neg;
          s.st.eliminated <- s.st.eliminated + 1;
          s.st.elim_clauses_removed <- s.st.elim_clauses_removed + limit;
          s.st.elim_resolvents <- s.st.elim_resolvents + count;
          List.iter (fun r -> add ~touch:true r) resolvents;
          changed := true;
          drain ()
      end
    end
  in
  List.iter (fun c -> add ~touch:false c) s.clauses;
  (* cheapest variables first: few occurrences means few resolvents *)
  let order = Array.init s.nvars (fun v -> v) in
  let cost = Array.make (max 1 s.nvars) 0 in
  for i = 0 to !n - 1 do
    if !alive.(i) then
      List.iter (fun l -> cost.(Lit.var l) <- cost.(Lit.var l) + 1)
        (Clause.to_list !cl.(i))
  done;
  Array.sort (fun a b -> Int.compare cost.(a) cost.(b)) order;
  Array.iter try_eliminate order;
  let out = ref [] in
  for i = !n - 1 downto 0 do
    if !alive.(i) then out := !cl.(i) :: !out
  done;
  s.clauses <- !out;
  !changed

let probe s =
  let f = Cnf.Formula.of_clauses ~nvars:s.nvars s.clauses in
  let bcp = Bcp.create f in
  if not (Bcp.is_consistent bcp) then raise Found_unsat;
  let changed = ref false in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && Bcp.value_var bcp v < 0 then begin
      let mark = Bcp.checkpoint bcp in
      let pos_ok =
        match Bcp.assume bcp (Lit.pos v) with
        | Some _ ->
          Bcp.backtrack bcp mark;
          true
        | None -> false
      in
      let neg_ok =
        match Bcp.assume bcp (Lit.neg_of_var v) with
        | Some _ ->
          Bcp.backtrack bcp mark;
          true
        | None -> false
      in
      match pos_ok, neg_ok with
      | false, false ->
        (* both phases fail: [v] is RUP (assuming ¬v propagates to a
           conflict); once added, the clause set is root-inconsistent
           and the Found_unsat handler's empty clause is RUP too *)
        s.emit (Types.Add (Clause.of_list [ Lit.pos v ]));
        raise Found_unsat
      | false, true ->
        fix_lit s `Failed (Lit.neg_of_var v);
        ignore (Bcp.add_unit bcp (Lit.neg_of_var v));
        if not (Bcp.is_consistent bcp) then raise Found_unsat;
        changed := true
      | true, false ->
        fix_lit s `Failed (Lit.pos v);
        ignore (Bcp.add_unit bcp (Lit.pos v));
        if not (Bcp.is_consistent bcp) then raise Found_unsat;
        changed := true
      | true, true -> ()
    end
  done;
  !changed

let run ?(subsumption = true) ?(strengthen = true) ?pures
    ?(probe_failed_literals = false) ?(elim = true) ?(frozen = [])
    ?(elim_clause_cap = 8) ?(elim_occ_cap = 10) ?proof f =
  (* Pure-literal fixes are RAT but not RUP, so they cannot enter the
     DRAT stream this pipeline emits: with a proof sink, [pures]
     defaults to — and must be — off. *)
  let pures = match pures with Some p -> p | None -> proof = None in
  if pures && proof <> None then
    invalid_arg "Preprocess.run: ~pures is incompatible with ~proof";
  let st =
    { units = 0; pures = 0; subsumed = 0; strengthened = 0;
      failed_literals = 0; eliminated = 0; elim_clauses_removed = 0;
      elim_resolvents = 0; rounds = 0 }
  in
  let nvars = Cnf.Formula.nvars f in
  let s =
    {
      nvars;
      clauses = Array.to_list (Cnf.Formula.clauses f);
      assign = Array.make (max 1 nvars) (-1);
      fix = [];
      elim = [];
      emit = (match proof with Some e -> e | None -> fun _ -> ());
      st;
    }
  in
  let frozen_arr = Array.make (max 1 nvars) false in
  List.iter (fun v -> if v >= 0 && v < nvars then frozen_arr.(v) <- true) frozen;
  let subsumption_on = subsumption in
  try
    let continue = ref true in
    while !continue do
      st.rounds <- st.rounds + 1;
      let c1 = simplify_clauses s in
      let c2 = if pures then pure_literals s else false in
      let c3 = if subsumption_on then subsume_pass s else false in
      let c4 = if strengthen then strengthen_pass s else false in
      let c5 =
        if elim then
          bve_pass s ~frozen:frozen_arr ~clause_cap:elim_clause_cap
            ~occ_cap:elim_occ_cap
        else false
      in
      let c6 = if probe_failed_literals then probe s else false in
      continue := (c1 || c2 || c3 || c4 || c5 || c6) && st.rounds < 20
    done;
    Simplified
      {
        formula = Cnf.Formula.of_clauses ~nvars:s.nvars s.clauses;
        fix = List.rev s.fix;
        elim = s.elim;
        stats = st;
      }
  with Found_unsat ->
    (* every raise site leaves the active clause set root-inconsistent
       under unit propagation, so the empty clause is RUP and the
       emitted stream is a complete refutation *)
    s.emit (Types.Add (Clause.of_list []));
    Unsat

let complete_model (simp : simplified) model =
  (* the fixes and the elimination stack may mention variables past the
     model array's end when callers hand in a short model *)
  let clause_need acc c =
    List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc
      (Clause.to_list c)
  in
  let need =
    List.fold_left (fun acc (v, _) -> max acc (v + 1)) (Array.length model)
      simp.fix
  in
  let need =
    List.fold_left
      (fun acc e ->
         let acc = max acc (e.evar + 1) in
         let acc = List.fold_left clause_need acc e.pos in
         List.fold_left clause_need acc e.neg)
      need simp.elim
  in
  let m =
    if need > Array.length model then
      Array.append model (Array.make (need - Array.length model) false)
    else Array.copy model
  in
  List.iter (fun (v, b) -> m.(v) <- b) simp.fix;
  (* Replay newest-first.  For each eliminated variable, every resolvent
     of its clause pair set is satisfied by [m] (it either survived to
     the final formula or was removed by a step replayed later), so one
     of the two values of [evar] satisfies all stored clauses: [true]
     unless no positive clause needs it. *)
  List.iter
    (fun e ->
       let others_sat c =
         List.exists
           (fun l ->
              let v = Lit.var l in
              v <> e.evar && (if Lit.is_pos l then m.(v) else not m.(v)))
           (Clause.to_list c)
       in
       m.(e.evar) <- List.exists (fun c -> not (others_sat c)) e.pos)
    simp.elim;
  m

let pp_stats ppf st =
  Format.fprintf ppf
    "units=%d pures=%d subsumed=%d strengthened=%d failed_literals=%d \
     vars_eliminated=%d clauses_removed=%d resolvents_added=%d rounds=%d"
    st.units st.pures st.subsumed st.strengthened st.failed_literals
    st.eliminated st.elim_clauses_removed st.elim_resolvents st.rounds
