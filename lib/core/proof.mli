(** DRAT proof checking, backward trimming, and unsat cores.

    A CDCL run with [proof_logging] emits a {e DRAT} stream: clause
    {e additions} (learned, vivified, or resolved clauses) interleaved
    with clause {e deletions} (database reductions, subsumption,
    elimination).  Every addition the pipeline emits is {e RUP} with
    respect to the clauses active when it appears: asserting the
    negation of every literal of the clause and unit-propagating yields
    a conflict.  Deletions never affect the soundness of an
    unsatisfiability certificate — they only reduce propagation power —
    so replaying the stream verifies, independently of the solver's
    internals, that an [UNSAT] answer is correct.

    Beyond forward {!check}ing, {!trim} replays the stream {e backward}
    from the final root conflict, drops every step the refutation never
    uses, and emits an LRAT-style certificate in which each kept step
    carries antecedent hints — clause ids that an independent checker
    ({!check_lrat}, or any off-the-shelf LRAT checker) can replay as
    unit propagations without search.  The original clauses that
    survive trimming are an {e unsat core}.

    The textual formats, emission rules, and checker exit codes are
    specified in [docs/PROOFS.md].  This is the certification mechanism
    modern solvers grew out of the clause-recording idea the paper
    describes in Sec. 4.1. *)

type step = Types.proof_step =
  | Add of Cnf.Clause.t
  | Delete of Cnf.Clause.t
(** Re-export of {!Types.proof_step} under its natural name. *)

type verdict =
  | Valid_refutation
      (** all steps RUP and the clause set reaches a root conflict: the
          formula is certified unsatisfiable *)
  | Valid_derivation
      (** all steps RUP, no final conflict (the run ended SAT or the
          proof is a partial derivation) *)
  | Invalid_step of int
      (** the addition at this step index (0-based) is not RUP *)

val check : Cnf.Formula.t -> step list -> verdict
(** Forward check: validate every addition (RUP), apply every deletion,
    and report whether the surviving clause set is root-inconsistent.
    Deletions that match no active clause are ignored. *)

(** {1 Backward trimming to LRAT} *)

type lrat_line = {
  id : int;  (** clause id; originals are 1..n in formula order *)
  lits : Cnf.Clause.t;
  hints : int list;
      (** antecedent clause ids, in unit-propagation order, conflict
          last *)
}

type trim_result =
  | Trimmed of {
      lines : lrat_line list;
          (** kept additions in increasing-id order; the final line is
              the empty clause *)
      core : int list;
          (** original clause ids (1-based, ascending) used by the
              refutation — an unsat core *)
      kept_adds : int;  (** additions surviving the trim *)
      total_adds : int;  (** additions in the input stream *)
    }
  | Not_refutation
      (** the stream's final clause set has no root conflict; nothing
          to trim *)
  | Trim_invalid of int
      (** a needed addition (0-based step index) is not RUP: the proof
          is corrupt *)

val trim : Cnf.Formula.t -> step list -> trim_result
(** Backward-trim a DRAT stream: find the terminal root conflict,
    then walk the steps in reverse, verifying and hint-annotating only
    the additions the refutation actually uses.  Unused additions are
    dropped without validation (like [drat-trim]); use {!check} for a
    full forward validation. *)

val core_clauses : Cnf.Formula.t -> int list -> Cnf.Clause.t list
(** Map core ids from {!trim} back to the formula's clauses. *)

val core_formula : Cnf.Formula.t -> int list -> Cnf.Formula.t
(** The unsat core as a formula over the same variable space. *)

val check_lrat : Cnf.Formula.t -> lrat_line list -> (unit, string) result
(** Independent linear-time check of a trimmed certificate: for each
    line, assume the negation of its literals and replay the hints in
    order — every hint must become unit (assert its literal) and the
    final hint must conflict; the last line must be the empty clause.
    No search, no watch lists: this is deliberately simple enough to
    re-implement from [docs/PROOFS.md] alone.  RAT (negative) hints are
    not supported — the pipeline never emits them. *)

(** {1 Text formats} *)

val drat_to_string : step list -> string
val write_drat : out_channel -> step list -> unit
val write_drat_file : string -> step list -> unit

val parse_drat : string -> step list
(** Parses the textual DRAT format ([d] prefix for deletions, clauses
    as 0-terminated DIMACS literal lists, [c] comment lines).  Raises
    [Failure] on malformed input. *)

val parse_drat_file : string -> step list

val lrat_to_string : lrat_line list -> string
val write_lrat : out_channel -> lrat_line list -> unit
val write_lrat_file : string -> lrat_line list -> unit

val parse_lrat : string -> lrat_line list
(** Parses textual LRAT ([<id> <lits> 0 <hints> 0]); deletion lines
    ([<id> d ...]) are accepted and ignored.  Raises [Failure] on
    malformed input. *)

val parse_lrat_file : string -> lrat_line list

(** {1 Convenience} *)

val solve_certified :
  ?config:Types.config -> Cnf.Formula.t -> Types.outcome * verdict
(** Solve with proof logging forced on and forward-check the emitted
    proof.  An [Unsat] outcome paired with anything but
    [Valid_refutation] indicates a solver defect. *)
