(* Structure-derived branching guidance.

   Producers turn what we already know about an instance — simulation
   signal probabilities and fanout from the circuit substrate, or
   Jeroslow-Wang literal weights from the raw CNF — into initial VSIDS
   activities and saved phases.  Guidance is purely heuristic: it
   changes the order the search explores, never the answer.  The exact
   formulas below are a published contract (docs/TUNING.md) pinned by
   test/test_guide.ml; change them there too or the suite fails. *)

type t = Types.guidance

type observation = { var : int; prob : float; fanout : int }

let empty = Types.no_guidance

let is_empty (g : t) = g.Types.seed_activity = [] && g.Types.seed_phase = []

let nseeded (g : t) =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (v, _) -> Hashtbl.replace tbl v ()) g.Types.seed_activity;
  List.iter (fun (v, _) -> Hashtbl.replace tbl v ()) g.Types.seed_phase;
  Hashtbl.length tbl

(* Simulation-derived seeds (docs/TUNING.md "Seeding from observations"):

     phase(v)    = prob >= 0.5
     activity(v) = (0.5 + 0.5 * fanout/fmax) * (1 - |2*prob - 1|)

   The second factor is the signal's undecidedness — a node whose
   simulated probability sits near 0.5 is the one simulation could not
   settle, so the search should; a node stuck at 0 or 1 will almost
   always be decided by propagation and earns no activity.  The first
   factor scales by normalized fanout: highly-observed nodes influence
   more of the circuit per decision (Sec. 5's justification-frontier
   argument).  Activities land in [0, 1]; phases follow the majority
   simulated value so the first descent tracks the likeliest
   assignment. *)
let of_observations obs =
  let fmax =
    List.fold_left (fun m o -> max m o.fanout) 1 obs |> float_of_int
  in
  let seed_activity =
    List.map
      (fun o ->
         let undecided = 1.0 -. Float.abs ((2.0 *. o.prob) -. 1.0) in
         let scale = 0.5 +. (0.5 *. float_of_int o.fanout /. fmax) in
         (o.var, scale *. undecided))
      obs
  and seed_phase = List.map (fun o -> (o.var, o.prob >= 0.5)) obs in
  { Types.seed_activity; seed_phase }

(* CNF-derived seeds (docs/TUNING.md "Seeding from the formula"):
   Jeroslow-Wang literal weights w(l) = sum over clauses c containing l
   of 2^-|c|, then

     activity(v) = (w(+v) + w(-v)) / max_u (w(+u) + w(-u))
     phase(v)    = w(+v) >= w(-v)

   Variables in many short clauses get branched first, and the phase
   points at the polarity with more supporting weight. *)
let of_formula f =
  let n = Cnf.Formula.nvars f in
  if n = 0 then empty
  else begin
    let wpos = Array.make n 0.0 and wneg = Array.make n 0.0 in
    Cnf.Formula.iter_clauses f (fun c ->
        let len = Cnf.Clause.size c in
        if len > 0 && len < 60 then begin
          let w = ldexp 1.0 (-len) in
          List.iter
            (fun l ->
               let v = Cnf.Lit.var l in
               if v < n then
                 if Cnf.Lit.is_pos l then wpos.(v) <- wpos.(v) +. w
                 else wneg.(v) <- wneg.(v) +. w)
            (Cnf.Clause.to_list c)
        end);
    let maxw = ref 1e-9 in
    for v = 0 to n - 1 do
      let w = wpos.(v) +. wneg.(v) in
      if w > !maxw then maxw := w
    done;
    let seed_activity = ref [] and seed_phase = ref [] in
    for v = n - 1 downto 0 do
      let w = wpos.(v) +. wneg.(v) in
      if w > 0.0 then begin
        seed_activity := (v, w /. !maxw) :: !seed_activity;
        seed_phase := (v, wpos.(v) >= wneg.(v)) :: !seed_phase
      end
    done;
    { Types.seed_activity = !seed_activity; seed_phase = !seed_phase }
  end

let apply_config (g : t) (cfg : Types.config) =
  if is_empty g then cfg else { cfg with Types.guide = Some g }

let emit_metrics reg (g : t) =
  Metrics.incr ~by:(nseeded g) (Metrics.counter reg "guide/seeded_vars");
  Metrics.incr (Metrics.counter reg "guide/applications")
