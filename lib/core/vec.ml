type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; size = 0; dummy }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  v.data.(i) <- x

let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x
let raw v = v.data

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (cap * 2) v.dummy in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then grow v;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop";
  v.size <- v.size - 1;
  let x = v.data.(v.size) in
  v.data.(v.size) <- v.dummy;
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last";
  v.data.(v.size - 1)

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  for i = n to v.size - 1 do
    v.data.(i) <- v.dummy
  done;
  v.size <- n

let clear v = shrink v 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.size - 1) []

let of_list ~dummy l =
  let v = create ~capacity:(max 1 (List.length l)) ~dummy () in
  List.iter (push v) l;
  v

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  shrink v !j

(* In-place heapsort over the live prefix [0, size): no spare array, so
   sorting never allocates regardless of the vector's length. *)
let sort cmp v =
  let a = v.data in
  let n = v.size in
  let swap i j =
    let t = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a j);
    Array.unsafe_set a j t
  in
  let rec sift_down root len =
    let child = (2 * root) + 1 in
    if child < len then begin
      let child =
        if child + 1 < len
           && cmp (Array.unsafe_get a child) (Array.unsafe_get a (child + 1)) < 0
        then child + 1
        else child
      in
      if cmp (Array.unsafe_get a root) (Array.unsafe_get a child) < 0 then begin
        swap root child;
        sift_down child len
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift_down i n
  done;
  for i = n - 1 downto 1 do
    swap 0 i;
    sift_down 0 i
  done
