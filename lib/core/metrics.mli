(** Metrics registry: counters, gauges, fixed-bucket histograms and
    phase timers, snapshotted to a versioned JSON document.

    A registry is a cheap bag of named instruments.  The solver family
    threads an optional registry through {!Cdcl}, {!Session},
    {!Portfolio} and {!Solver}; when none is attached the hot paths pay
    a single option check.  Registries are {e not} thread-safe — the
    portfolio gives each worker its own and merges them when the race
    settles ({!merge_into}).

    The JSON encoding ({!to_json}) is the stable surface consumed by
    the CLI tools' [--metrics] flag and the bench emitters; its contract
    (field names, bucket layouts, versioning policy) is documented in
    [docs/METRICS.md].  {!of_json} restores a snapshot, and the test
    suite pins the round trip. *)

type t
(** A metric registry. *)

val create : unit -> t

val schema_version : int
(** Version of the JSON encoding; bumped on any incompatible change. *)

val schema_name : string
(** The [schema] discriminator field value, ["satreda-metrics"]. *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> string -> counter
(** Registers (or retrieves) the counter [name].  Raises
    [Invalid_argument] if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val set_counter : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-or-maximum observed value. *)

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit

val max_gauge : gauge -> float -> unit
(** Raise the gauge to [v] if larger (high-water marks). *)

val gauge_value : gauge -> float

(** {1 Histograms} — fixed inclusive upper-bound buckets
    (Prometheus-style [le]), plus one overflow bucket. *)

type histogram

val histogram : t -> string -> bounds:float array -> histogram
(** Registers histogram [name] with the given strictly-increasing
    bucket bounds.  Re-registration with identical bounds returns the
    existing histogram; different bounds raise [Invalid_argument]. *)

val observe : histogram -> float -> unit
val observe_int : histogram -> int -> unit

val bucket_index : float array -> float -> int
(** [bucket_index bounds v] is the index of the bucket [v] lands in:
    the first index [i] with [v <= bounds.(i)], or [Array.length
    bounds] for the overflow bucket.  Exposed so tests can pin the
    boundary convention. *)

val histogram_total : histogram -> int
val histogram_sum : histogram -> float

val histogram_counts : histogram -> int array
(** Copy of the per-bucket counts; length [Array.length bounds + 1]. *)

val histogram_bounds : histogram -> float array

(** {1 Phase timers} — cumulative wall time per named phase, measured
    on the {!Monotime} clock. *)

type timer

val timer : t -> string -> timer

val phase_begin : t -> string -> unit
val phase_end : t -> string -> unit
(** [phase_end] without a matching [phase_begin] is a no-op. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk, adding its duration to the timer (also on
    exceptions). *)

val timer_seconds : timer -> float

(** {1 Solver instruments} — the standard search-shape histograms. *)

type solver_instruments = {
  lbd : histogram;  (** LBD of each learned clause *)
  backjump : histogram;
      (** decision levels unwound per conflict (backjump length) *)
  trail : histogram;  (** trail depth at each conflict *)
}

val solver_instruments : t -> solver_instruments
(** Registers ["solver/lbd"], ["solver/backjump_levels"] and
    ["solver/trail_depth"] with the standard bucket layouts and returns
    them, ready to hand to [Cdcl.set_instruments]. *)

val lbd_bounds : float array
val backjump_bounds : float array
val trail_bounds : float array

val time_bounds : float array
(** Standard per-query duration buckets (seconds), shared by the BMC
    per-bound and ATPG per-fault histograms. *)

(** {1 Bridging the legacy statistics record} *)

val record_stats : t -> Types.stats -> unit
(** Set the ["solver/*"] counters to the (cumulative) values in the
    record — for one-shot solves. *)

val add_stats : t -> Types.stats -> unit
(** Accumulate a per-query {!Types.diff_stats} delta into the
    ["solver/*"] counters — for sessions solving many queries, possibly
    across several underlying solvers. *)

(** {1 Snapshots} *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: counters and histograms add, gauges take
    the maximum, timers add.  Histograms present in both must have
    identical bounds. *)

val to_json : ?tool:string -> t -> Json.t
(** Versioned snapshot.  Metric names are emitted sorted, so two
    registries holding the same values produce identical bytes. *)

val of_json : Json.t -> (t, string) result
(** Restores a snapshot produced by {!to_json} (same schema version
    only).  Open-phase timer state is not restored. *)

val write_file : ?tool:string -> t -> string -> unit
(** Pretty-printed {!to_json} plus a trailing newline. *)
