(** Minimal JSON values with a deterministic printer and a strict parser.

    This is the serialization substrate of the observability layer
    ({!Metrics} snapshots, {!Trace} event logs, benchmark emitters).  It
    is deliberately tiny — no external dependency — and deterministic:
    printing the same value always yields the same bytes, so metric
    snapshots can be diffed across runs (see [docs/METRICS.md]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** fields print in list order; producers that need byte-stable
          output sort their keys *)

val to_string : ?indent:bool -> t -> string
(** Renders the value.  [indent] (default [false]) pretty-prints with
    two-space indentation.  Floats use the shortest decimal form that
    round-trips ([parse_exn (to_string v)] reconstructs equal numbers);
    NaN and infinities — which JSON cannot represent — render as
    [null]. *)

exception Parse_error of string

val parse : string -> (t, string) result
(** Strict JSON parsing (whole input must be one document, trailing
    bytes after the value are rejected).  Strict also in the RFC 8259
    sense: numbers follow the JSON grammar exactly (no leading zeros,
    no bare ['.'] or dangling exponent), unescaped control characters
    in strings are rejected, and nesting is bounded (512 levels) so
    hostile input cannot exhaust the stack — the parser doubles as the
    [satd] wire-protocol reader.  [\u] escapes outside the BMP are not
    recombined into surrogate pairs — sufficient for documents produced
    by {!to_string}. *)

val parse_exn : string -> t
(** Like {!parse}; raises {!Parse_error}. *)

val parse_line : string -> (t, string) result
(** One wire-protocol frame: exactly one JSON value on exactly one
    line.  In addition to {!parse}'s strictness, any embedded newline
    or carriage return — even where plain JSON would allow it as
    insignificant whitespace — is a framing error.  This is the parsing
    contract of the line-delimited [satd] protocol ([docs/SATD.md]). *)

val read_frame : in_channel -> (t, string) result option
(** Reads one newline-terminated frame from the channel and parses it
    with {!parse_line} ([None] at end of input).  A trailing [\r] is
    stripped, so CRLF-framing clients interoperate. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_float : t -> float option
(** [Int] values coerce to float. *)

val to_string_opt : t -> string option
val to_list : t -> t list option

val equal : t -> t -> bool
(** Structural equality; [Int i] equals [Float f] when [f] represents
    exactly [i] (the parser may not reconstruct the original
    constructor for whole-valued floats). *)
