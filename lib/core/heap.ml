(* Indexed binary max-heap keyed by an external score array.  The scores
   live in a flat [float array] shared with the owner (the solver's VSIDS
   activity array): comparisons are unboxed float loads, with no closure
   call and no allocation on the bump/undo paths. *)

type t = {
  mutable scores : float array;
  mutable heap : int array;
  mutable size : int;
  mutable pos : int array; (* element -> heap index, or -1 *)
}

let create ~scores n =
  { scores; heap = Array.make (max n 1) (-1); size = 0; pos = Array.make (max n 1) (-1) }

let set_scores h scores = h.scores <- scores

let grow h n =
  if n > Array.length h.pos then begin
    let pos = Array.make n (-1) in
    Array.blit h.pos 0 pos 0 (Array.length h.pos);
    h.pos <- pos;
    let heap = Array.make n (-1) in
    Array.blit h.heap 0 heap 0 h.size;
    h.heap <- heap
  end

let mem h x = x < Array.length h.pos && h.pos.(x) >= 0
let is_empty h = h.size = 0
let swap h i j =
  let a = h.heap.(i) and b = h.heap.(j) in
  h.heap.(i) <- b;
  h.heap.(j) <- a;
  h.pos.(b) <- i;
  h.pos.(a) <- j

let rec up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.scores.(h.heap.(i)) > h.scores.(h.heap.(parent)) then begin
      swap h i parent;
      up h parent
    end
  end

let rec down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.size && h.scores.(h.heap.(l)) > h.scores.(h.heap.(!best)) then
    best := l;
  if r < h.size && h.scores.(h.heap.(r)) > h.scores.(h.heap.(!best)) then
    best := r;
  if !best <> i then begin
    swap h i !best;
    down h !best
  end

let insert h x =
  grow h (x + 1);
  if not (mem h x) then begin
    if h.size = Array.length h.heap then begin
      let heap = Array.make (2 * h.size) (-1) in
      Array.blit h.heap 0 heap 0 h.size;
      h.heap <- heap
    end;
    h.heap.(h.size) <- x;
    h.pos.(x) <- h.size;
    h.size <- h.size + 1;
    up h h.pos.(x)
  end

let pop_max h =
  if h.size = 0 then raise Not_found;
  let top = h.heap.(0) in
  h.size <- h.size - 1;
  h.pos.(top) <- -1;
  if h.size > 0 then begin
    h.heap.(0) <- h.heap.(h.size);
    h.pos.(h.heap.(0)) <- 0;
    down h 0
  end;
  top

let update h x =
  if mem h x then begin
    up h h.pos.(x);
    down h h.pos.(x)
  end

let rebuild h xs =
  for i = 0 to h.size - 1 do
    h.pos.(h.heap.(i)) <- -1
  done;
  h.size <- 0;
  List.iter (insert h) xs
