(** A monotone-ish clock for phase timers and trace timestamps.

    The stdlib exposes no monotonic clock and this project links no C
    stubs, so the implementation clamps [Unix.gettimeofday] through an
    atomic maximum: successive calls never observe time going backwards
    (process-wide, across domains), though a stepped wall clock can
    still stretch or freeze apparent durations.  Good enough for the
    millisecond-scale phase timing the {!Metrics} layer needs, and
    honest about being wall-time underneath. *)

val now_s : unit -> float
(** Current time in seconds.  Monotone non-decreasing across all
    callers in the process. *)

val since_start_s : unit -> float
(** Seconds since this module was initialised (first use of the
    library).  Trace timestamps use this origin so runs are comparable
    without leaking absolute wall-clock times into the output. *)
