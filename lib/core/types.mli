(** Shared types for the solver family: configuration knobs, statistics,
    and outcomes.

    Every technique named in Sections 4 and 6 of the paper is a
    configuration value here, so experiment ablations are pure config
    changes. *)

type heuristic =
  | Vsids          (** conflict-driven variable activity (default) *)
  | Dlis           (** dynamic largest individual sum *)
  | Moms           (** maximum occurrences in minimum-size clauses *)
  | Jeroslow_wang  (** static 2^-|c| literal weights *)
  | Fixed_order    (** lowest-index unassigned variable *)
  | Random_order   (** uniformly random unassigned variable *)

type restart_policy =
  | No_restarts
  | Luby of int               (** Luby sequence scaled by the base *)
  | Geometric of int * float  (** first limit, growth factor *)

type deletion_policy =
  | No_deletion
  | Size_bounded of int
      (** delete learned clauses larger than the bound *)
  | Relevance of int * int
      (** [Relevance (size_bound, r)]: delete learned clauses larger than
          [size_bound] once more than [r] of their literals are unassigned
          (relevance-based learning, Sec. 4.1 property 3) *)
  | Lbd_bounded of int
      (** keep only "glue" clauses whose literal-block distance (number
          of distinct decision levels at learning time) is within the
          bound — the modern refinement of relevance-based deletion *)
  | Activity_halving
      (** periodically delete the less active half (modern default) *)

type guidance = {
  seed_activity : (int * float) list;
      (** [(var, activity)] seeds in [0, 1]; applied scaled to the
          solver's current activity ceiling so seeded variables are
          visited first but conflict-driven bumps can still overtake
          them.  Out-of-range variables are ignored. *)
  seed_phase : (int * bool) list;
      (** [(var, phase)] initial saved phases — the polarity the solver
          tries first when it decides on [var] *)
}
(** Structure-derived branching advice, produced by {!module:Guide} (or
    by the circuit substrate's simulation) and consumed by
    {!Cdcl.apply_guidance}.  Purely heuristic: guidance never changes
    answers, only the order in which the search visits them.  See
    [docs/TUNING.md] for the seeding contract. *)

val no_guidance : guidance

type config = {
  heuristic : heuristic;
  restarts : restart_policy;
  deletion : deletion_policy;
  minimize_learned : bool;   (** conflict-clause minimization *)
  phase_saving : bool;
  chronological : bool;
      (** force chronological backtracking (ablation of Sec. 4.1
          property 1); learned clauses remain asserting *)
  random_seed : int;
  random_decision_freq : float;
      (** probability of a random decision (randomization, Sec. 6) *)
  max_conflicts : int option;  (** budget; exceeded -> [Unknown] *)
  max_decisions : int option;
  proof_logging : bool;
      (** record every learned clause so {!module:Proof} can replay the
          derivation as a reverse-unit-propagation (RUP) proof *)
  inprocessing : bool;
      (** simplify the learnt-clause database during search: at restart
          boundaries (so it never fires under [No_restarts]) the solver
          runs a budgeted pass of learnt-clause subsumption and
          vivification (distillation).  Off by default.  Sound with
          [proof_logging]: every shortened clause is itself
          reverse-unit-propagation derivable and is appended to the
          proof. *)
  inprocess_interval : int;
      (** minimum conflicts between two inprocessing passes *)
  guide : guidance option;
      (** seed activities and phases applied when a solver is created
          over a non-empty formula (see {!Cdcl.create}); engines that
          build their solvers lazily — sessions, sweeps — apply guidance
          explicitly through {!Cdcl.apply_guidance} instead *)
}

val default : config
(** Modern defaults: VSIDS, Luby 100 restarts, activity-based deletion,
    minimization, phase saving, no randomness. *)

val grasp_like : config
(** A GRASP-style configuration: DLIS-flavoured decisions, geometric
    restarts off, relevance-based deletion. *)

type stats = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts_done : int;
  mutable learned : int;
  mutable learned_literals : int;
  mutable deleted : int;
  mutable max_level : int;
  mutable nonchrono_backjumps : int;
      (** conflicts whose backjump skipped at least one level *)
  mutable skipped_levels : int;
      (** total decision levels skipped by non-chronological backtracking *)
  mutable exported : int;
      (** learned clauses handed to an external consumer (clause sharing) *)
  mutable imported : int;
      (** foreign clauses accepted through {!Cdcl.import_clause} *)
  mutable interrupts : int;
      (** searches abandoned by a cooperative {!Cdcl.interrupt} *)
}

val mk_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

val copy_stats : stats -> stats
(** Independent snapshot of a (mutable) statistics record. *)

val diff_stats : stats -> stats -> stats
(** [diff_stats now before] is the per-call delta between two snapshots
    of the same cumulative counter set: counters are subtracted
    field-wise; [max_level] — a high-water mark rather than a counter —
    is taken from [now]. *)

val add_stats_into : stats -> stats -> unit
(** [add_stats_into acc d] accumulates [d] into [acc] (counters add,
    [max_level] takes the max) — for totalling per-call deltas across
    solvers or queries. *)

type proof_step =
  | Add of Cnf.Clause.t
      (** the clause was derived (learned, vivified, resolved, …) and
          joins the active clause set; every addition the pipeline emits
          is RUP over the clauses active when it appears *)
  | Delete of Cnf.Clause.t
      (** the clause leaves the active clause set (database reduction,
          subsumption, elimination); deletions never affect soundness of
          an unsatisfiability certificate, only propagation power *)
(** One step of a clausal DRAT proof.  Lives here (rather than in
    {!module:Proof}) so {!module:Cdcl} and {!module:Preprocess} can emit
    steps without depending on the checker.  See [docs/PROOFS.md] for
    the full certification contract. *)

val pp_proof_step : Format.formatter -> proof_step -> unit

type outcome =
  | Sat of bool array
      (** satisfying assignment, indexed by variable; unconstrained
          variables default to [false] *)
  | Unsat
  | Unsat_assuming of Cnf.Lit.t list
      (** unsatisfiable under the given assumptions; carries a subset of
          the assumptions sufficient for the conflict *)
  | Unknown of string
      (** resource budget exhausted (the argument says which) *)

val pp_outcome : Format.formatter -> outcome -> unit

val is_sat : outcome -> bool
val model_exn : outcome -> bool array
(** Raises [Invalid_argument] when the outcome is not [Sat]. *)
