(* Metrics registry: counters, gauges, fixed-bucket histograms and phase
   timers, with a versioned JSON snapshot.  See metrics.mli and
   docs/METRICS.md for the schema contract. *)

let schema_version = 1
let schema_name = "satreda-metrics"

type counter = { mutable n : int }
type gauge = { mutable v : float }

type histogram = {
  bounds : float array; (* strictly increasing inclusive upper bounds *)
  counts : int array;   (* length bounds + 1; last bucket is overflow *)
  mutable sum : float;
  mutable total : int;
}

type timer = {
  mutable seconds : float;
  mutable runs : int;
  mutable open_since : float; (* nan when not running *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Timer _ -> "timer"

let find_or_add t name make describe =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    ignore describe;
    let m = make () in
    Hashtbl.add t.tbl name m;
    m

let clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name existing)
       wanted)

(* --- counters ------------------------------------------------------------ *)

let counter t name =
  match find_or_add t name (fun () -> Counter { n = 0 }) "counter" with
  | Counter c -> c
  | m -> clash name m "counter"

let incr ?(by = 1) c = c.n <- c.n + by
let counter_value c = c.n

let set_counter c v = c.n <- v

(* --- gauges -------------------------------------------------------------- *)

let gauge t name =
  match find_or_add t name (fun () -> Gauge { v = 0. }) "gauge" with
  | Gauge g -> g
  | m -> clash name m "gauge"

let set_gauge g v = g.v <- v
let max_gauge g v = if v > g.v then g.v <- v
let gauge_value g = g.v

(* --- histograms ---------------------------------------------------------- *)

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics: histogram needs at least one bound";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics: histogram bounds must be strictly increasing"
  done

let histogram t name ~bounds =
  match
    find_or_add t name
      (fun () ->
         check_bounds bounds;
         Histogram
           {
             bounds = Array.copy bounds;
             counts = Array.make (Array.length bounds + 1) 0;
             sum = 0.;
             total = 0;
           })
      "histogram"
  with
  | Histogram h ->
    if h.bounds <> bounds then
      invalid_arg (Printf.sprintf "Metrics: %S re-registered with different bounds" name);
    h
  | m -> clash name m "histogram"

(* Index of the bucket [v] falls into: the first bound [>= v] (bounds
   are inclusive upper limits, Prometheus "le" style), or the overflow
   bucket past the last bound. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  (* invariant: every bound below !lo is < v; bounds at/after !hi are >= v *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1

let observe_int h v = observe h (float_of_int v)
let histogram_total h = h.total
let histogram_sum h = h.sum
let histogram_counts h = Array.copy h.counts
let histogram_bounds h = Array.copy h.bounds

(* --- phase timers -------------------------------------------------------- *)

let timer t name =
  match
    find_or_add t name
      (fun () -> Timer { seconds = 0.; runs = 0; open_since = Float.nan })
      "timer"
  with
  | Timer tm -> tm
  | m -> clash name m "timer"

let phase_begin t name =
  let tm = timer t name in
  tm.open_since <- Monotime.now_s ()

let phase_end t name =
  let tm = timer t name in
  if not (Float.is_nan tm.open_since) then begin
    tm.seconds <- tm.seconds +. (Monotime.now_s () -. tm.open_since);
    tm.runs <- tm.runs + 1;
    tm.open_since <- Float.nan
  end

let time t name f =
  let tm = timer t name in
  let t0 = Monotime.now_s () in
  Fun.protect
    ~finally:(fun () ->
      tm.seconds <- tm.seconds +. (Monotime.now_s () -. t0);
      tm.runs <- tm.runs + 1)
    f

let timer_seconds tm = tm.seconds

(* --- solver instruments --------------------------------------------------- *)

(* Default bucket layouts for solver-shape histograms; chosen once and
   documented in docs/METRICS.md — changing them is a schema change. *)
let lbd_bounds = [| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32. |]
let backjump_bounds = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]

let trail_bounds =
  [| 16.; 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144. |]

let time_bounds =
  [| 0.001; 0.005; 0.02; 0.1; 0.5; 2.; 10.; 60.; 300. |]

type solver_instruments = {
  lbd : histogram;
  backjump : histogram;
  trail : histogram;
}

let solver_instruments t =
  {
    lbd = histogram t "solver/lbd" ~bounds:lbd_bounds;
    backjump = histogram t "solver/backjump_levels" ~bounds:backjump_bounds;
    trail = histogram t "solver/trail_depth" ~bounds:trail_bounds;
  }

(* --- Types.stats bridge --------------------------------------------------- *)

let stats_fields (s : Types.stats) =
  [
    ("solver/decisions", s.decisions);
    ("solver/propagations", s.propagations);
    ("solver/conflicts", s.conflicts);
    ("solver/restarts", s.restarts_done);
    ("solver/learned", s.learned);
    ("solver/learned_literals", s.learned_literals);
    ("solver/deleted", s.deleted);
    ("solver/nonchrono_backjumps", s.nonchrono_backjumps);
    ("solver/skipped_levels", s.skipped_levels);
    ("solver/exported", s.exported);
    ("solver/imported", s.imported);
    ("solver/interrupts", s.interrupts);
  ]

let record_stats t (s : Types.stats) =
  List.iter (fun (name, v) -> set_counter (counter t name) v) (stats_fields s);
  max_gauge (gauge t "solver/max_level") (float_of_int s.max_level)

let add_stats t (s : Types.stats) =
  List.iter (fun (name, v) -> incr ~by:v (counter t name)) (stats_fields s);
  max_gauge (gauge t "solver/max_level") (float_of_int s.max_level)

(* --- merging -------------------------------------------------------------- *)

let merge_into ~into src =
  Hashtbl.iter
    (fun name m ->
       match m with
       | Counter c -> incr ~by:c.n (counter into name)
       | Gauge g -> max_gauge (gauge into name) g.v
       | Histogram h ->
         let dst = histogram into name ~bounds:h.bounds in
         Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
         dst.sum <- dst.sum +. h.sum;
         dst.total <- dst.total + h.total
       | Timer tm ->
         let dst = timer into name in
         dst.seconds <- dst.seconds +. tm.seconds;
         dst.runs <- dst.runs + tm.runs)
    src.tbl

(* --- JSON ------------------------------------------------------------------ *)

let sorted_section t pick =
  Hashtbl.fold
    (fun name m acc -> match pick name m with Some f -> f :: acc | None -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json ?tool t =
  let counters =
    sorted_section t (fun name -> function
      | Counter c -> Some (name, Json.Int c.n)
      | _ -> None)
  in
  let gauges =
    sorted_section t (fun name -> function
      | Gauge g -> Some (name, Json.Float g.v)
      | _ -> None)
  in
  let histograms =
    sorted_section t (fun name -> function
      | Histogram h ->
        Some
          ( name,
            Json.Obj
              [
                ("le", Json.List (Array.to_list h.bounds |> List.map (fun b -> Json.Float b)));
                ("counts", Json.List (Array.to_list h.counts |> List.map (fun c -> Json.Int c)));
                ("count", Json.Int h.total);
                ("sum", Json.Float h.sum);
              ] )
      | _ -> None)
  in
  let timers =
    sorted_section t (fun name -> function
      | Timer tm ->
        Some
          ( name,
            Json.Obj [ ("seconds", Json.Float tm.seconds); ("count", Json.Int tm.runs) ] )
      | _ -> None)
  in
  Json.Obj
    ((("schema", Json.String schema_name) :: ("version", Json.Int schema_version)
      ::
      (match tool with Some name -> [ ("tool", Json.String name) ] | None -> []))
     @ [
         ("counters", Json.Obj counters);
         ("gauges", Json.Obj gauges);
         ("histograms", Json.Obj histograms);
         ("timers", Json.Obj timers);
       ])

let of_json j =
  let fail m = Error ("Metrics.of_json: " ^ m) in
  match Json.member "schema" j with
  | Some (Json.String s) when s = schema_name -> (
    match Json.member "version" j with
    | Some (Json.Int v) when v = schema_version -> (
      let t = create () in
      let section name f =
        match Json.member name j with
        | Some (Json.Obj fields) -> List.iter f fields
        | _ -> ()
      in
      try
        section "counters" (fun (name, v) ->
          match Json.to_int v with
          | Some n -> set_counter (counter t name) n
          | None -> failwith (name ^ ": counter must be an integer"));
        section "gauges" (fun (name, v) ->
          match Json.to_float v with
          | Some f -> set_gauge (gauge t name) f
          | None -> failwith (name ^ ": gauge must be a number"));
        section "histograms" (fun (name, v) ->
          let floats key =
            match Option.bind (Json.member key v) Json.to_list with
            | Some l -> Array.of_list (List.filter_map Json.to_float l)
            | None -> failwith (name ^ ": missing " ^ key)
          in
          let ints key =
            match Option.bind (Json.member key v) Json.to_list with
            | Some l -> Array.of_list (List.filter_map Json.to_int l)
            | None -> failwith (name ^ ": missing " ^ key)
          in
          let bounds = floats "le" in
          let counts = ints "counts" in
          if Array.length counts <> Array.length bounds + 1 then
            failwith (name ^ ": counts must have one more entry than le");
          let h = histogram t name ~bounds in
          Array.blit counts 0 h.counts 0 (Array.length counts);
          h.total <-
            (match Option.bind (Json.member "count" v) Json.to_int with
             | Some n -> n
             | None -> Array.fold_left ( + ) 0 counts);
          h.sum <-
            (match Option.bind (Json.member "sum" v) Json.to_float with
             | Some s -> s
             | None -> 0.));
        section "timers" (fun (name, v) ->
          let tm = timer t name in
          tm.seconds <-
            (match Option.bind (Json.member "seconds" v) Json.to_float with
             | Some s -> s
             | None -> failwith (name ^ ": missing seconds"));
          tm.runs <-
            (match Option.bind (Json.member "count" v) Json.to_int with
             | Some n -> n
             | None -> 0));
        Ok t
      with Failure m -> fail m)
    | _ -> fail "unsupported or missing version")
  | _ -> fail "not a satreda-metrics document"

let write_file ?tool t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:true (to_json ?tool t));
      output_char oc '\n')
