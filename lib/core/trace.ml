(* Structured event log for solver runs.  See trace.mli for the
   contract and docs/METRICS.md for the JSONL encoding. *)

let schema_version = 1
let schema_name = "satreda-trace"

type event =
  | Solve_begin of { query : int }
  | Solve_end of { query : int; outcome : string }
  | Phase_begin of string
  | Phase_end of string
  | Decision of { level : int; lit : Cnf.Lit.t }
  | Propagation of { props : int; trail : int }
  | Conflict of { level : int; trail : int }
  | Learn of { lbd : int; size : int }
  | Restart of { number : int }
  | Reduce_db of { before : int; after : int }
  | Import of { lbd : int; size : int }
  | Export of { lbd : int; size : int }
  | Cube_emit of { depth : int; size : int }
  | Cube_solve of { size : int; outcome : string }
  | Cube_split of { size : int }

type record = { worker : int; seq : int; time_s : float; event : event }

let outcome_label : Types.outcome -> string = function
  | Types.Sat _ -> "sat"
  | Types.Unsat -> "unsat"
  | Types.Unsat_assuming _ -> "unsat-assuming"
  | Types.Unknown why -> "unknown:" ^ why

(* growable record buffer with a hard capacity; overflow is counted,
   not silently ignored *)
type sink = {
  worker_id : int;
  capacity : int;
  mutable buf : record array;
  mutable len : int;
  mutable next_seq : int;
  mutable dropped : int;
}

let dummy =
  { worker = 0; seq = 0; time_s = 0.; event = Restart { number = 0 } }

let default_capacity = 1_000_000

let make_sink ?(worker = 0) ?(capacity = default_capacity) () =
  {
    worker_id = worker;
    capacity = max 1 capacity;
    buf = Array.make 1024 dummy;
    len = 0;
    next_seq = 0;
    dropped = 0;
  }

let push s r =
  if s.len >= s.capacity then s.dropped <- s.dropped + 1
  else begin
    if s.len = Array.length s.buf then begin
      let bigger =
        Array.make (min s.capacity (2 * Array.length s.buf)) dummy
      in
      Array.blit s.buf 0 bigger 0 s.len;
      s.buf <- bigger
    end;
    s.buf.(s.len) <- r;
    s.len <- s.len + 1
  end

let emit s event =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  push s
    { worker = s.worker_id; seq; time_s = Monotime.since_start_s (); event }

let records s = Array.sub s.buf 0 s.len
let length s = s.len
let dropped s = s.dropped
let worker s = s.worker_id

let absorb ~into src =
  for i = 0 to src.len - 1 do
    push into src.buf.(i)
  done;
  into.dropped <- into.dropped + src.dropped

let merged sinks =
  let all = Array.concat (List.map records sinks) in
  (* per-sink timestamps are non-decreasing (Monotime), so a stable
     sort on time keeps each worker's stream in emission order *)
  let tagged = Array.mapi (fun i r -> (i, r)) all in
  Array.sort
    (fun (i, a) (j, b) ->
       let c = Float.compare a.time_s b.time_s in
       if c <> 0 then c else Stdlib.compare i j)
    tagged;
  Array.map snd tagged

(* --- JSONL encoding ------------------------------------------------------- *)

let event_fields = function
  | Solve_begin { query } ->
    [ ("ev", Json.String "solve-begin"); ("query", Json.Int query) ]
  | Solve_end { query; outcome } ->
    [
      ("ev", Json.String "solve-end");
      ("query", Json.Int query);
      ("outcome", Json.String outcome);
    ]
  | Phase_begin name ->
    [ ("ev", Json.String "phase-begin"); ("phase", Json.String name) ]
  | Phase_end name ->
    [ ("ev", Json.String "phase-end"); ("phase", Json.String name) ]
  | Decision { level; lit } ->
    [
      ("ev", Json.String "decision");
      ("level", Json.Int level);
      ("lit", Json.Int (Cnf.Lit.to_dimacs lit));
    ]
  | Propagation { props; trail } ->
    [
      ("ev", Json.String "propagation");
      ("props", Json.Int props);
      ("trail", Json.Int trail);
    ]
  | Conflict { level; trail } ->
    [
      ("ev", Json.String "conflict");
      ("level", Json.Int level);
      ("trail", Json.Int trail);
    ]
  | Learn { lbd; size } ->
    [ ("ev", Json.String "learn"); ("lbd", Json.Int lbd); ("size", Json.Int size) ]
  | Restart { number } ->
    [ ("ev", Json.String "restart"); ("number", Json.Int number) ]
  | Reduce_db { before; after } ->
    [
      ("ev", Json.String "reduce-db");
      ("before", Json.Int before);
      ("after", Json.Int after);
    ]
  | Import { lbd; size } ->
    [ ("ev", Json.String "import"); ("lbd", Json.Int lbd); ("size", Json.Int size) ]
  | Export { lbd; size } ->
    [ ("ev", Json.String "export"); ("lbd", Json.Int lbd); ("size", Json.Int size) ]
  | Cube_emit { depth; size } ->
    [
      ("ev", Json.String "cube-emit");
      ("depth", Json.Int depth);
      ("size", Json.Int size);
    ]
  | Cube_solve { size; outcome } ->
    [
      ("ev", Json.String "cube-solve");
      ("size", Json.Int size);
      ("outcome", Json.String outcome);
    ]
  | Cube_split { size } ->
    [ ("ev", Json.String "cube-split"); ("size", Json.Int size) ]

let record_to_json r =
  Json.Obj
    (("t", Json.Float r.time_s) :: ("w", Json.Int r.worker)
     :: ("seq", Json.Int r.seq) :: event_fields r.event)

let header ?tool ~dropped:d () =
  Json.Obj
    ((("schema", Json.String schema_name) :: ("version", Json.Int schema_version)
      ::
      (match tool with Some t -> [ ("tool", Json.String t) ] | None -> []))
     @ [ ("dropped", Json.Int d) ])

let write_records oc ?tool ~dropped:d recs =
  output_string oc (Json.to_string (header ?tool ~dropped:d ()));
  output_char oc '\n';
  Array.iter
    (fun r ->
       output_string oc (Json.to_string (record_to_json r));
       output_char oc '\n')
    recs

let write_file ?tool sinks path =
  let recs = merged sinks in
  let d = List.fold_left (fun acc s -> acc + dropped s) 0 sinks in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_records oc ?tool ~dropped:d recs)
