(** Per-instance auto-tuning: feature extraction and a transparent
    rule-based policy selector.

    The DAC-2000 premise is that EDA-generated instances carry
    exploitable structure; this module measures that structure cheaply
    — syntactic clause-shape statistics plus a probe-measured
    propagation density (cf. Semenov et al.'s LEC hardness estimation)
    — and maps the measurements to a solving policy (engine,
    preprocessing level, restart schedule, inprocessing, guidance)
    through a small published decision table.

    The formulas and the table are a reimplementable contract in
    [docs/TUNING.md], pinned by [test/test_guide.ml]: given the same
    formula, [extract] is deterministic and [select] is a pure function
    of the features, so [satsolve --explain-tuning] output can be
    checked against the document by hand.  Tuning is purely heuristic —
    it never changes an answer, only how fast the solver gets there. *)

type features = {
  nvars : int;
  nclauses : int;
  clause_var_ratio : float;  (** [nclauses / max 1 nvars] *)
  binary_frac : float;  (** fraction of clauses of size 2 *)
  ternary_frac : float;  (** fraction of clauses of size 3 *)
  horn_frac : float;  (** fraction of clauses with <= 1 positive literal *)
  gate_like_frac : float;
      (** fraction of variables whose occurrence profile matches a
          Tseitin gate output: two binary clauses of one polarity plus
          a ternary clause of the other (either orientation) *)
  probe_density : float;
      (** mean trail growth per non-conflicting probe over the
          [min probes nvars] highest-occurrence variables, divided by
          [nvars]; 0 when probing is disabled or every probe conflicts *)
  probe_failed_frac : float;
      (** fraction of probes that hit a conflict (failed literals) *)
  probes_run : int;  (** probes actually executed *)
  extraction_time_s : float;  (** wall time spent in {!extract} *)
}

type engine_choice =
  | Sequential  (** one CDCL solver *)
  | Portfolio_race of int  (** diversified portfolio on [jobs] domains *)
  | Cube_conquer of int  (** lookahead cubes + [jobs] conquer workers *)

type preprocess_level =
  | Pre_off  (** skip preprocessing entirely *)
  | Pre_basic  (** unit/subsumption/strengthening, no elimination *)
  | Pre_full  (** the full pipeline, bounded variable elimination on *)

type policy = {
  engine : engine_choice;
  preprocess : preprocess_level;
  restarts : Types.restart_policy;
  inprocessing : bool;
  guided : bool;  (** seed activities/phases via {!Guide.of_formula} *)
  reason : string list;
      (** ids of the decision-table rules that fired, in dimension
          order (engine, preprocess, restarts, inprocessing, guidance)
          — e.g. [["E1"; "P2"; "R1"; "I1"; "G1"]] *)
}

val extract : ?probes:int -> Cnf.Formula.t -> features
(** Measure the formula.  [probes] (default 32) bounds the probe pass;
    [probes = 0] skips solver construction entirely and leaves the
    probe features at 0.  Deterministic: probe targets are the
    highest-occurrence variables, ties broken toward the lower index. *)

val select : ?jobs:int -> features -> policy
(** Apply the decision table ([docs/TUNING.md]) at parallelism [jobs]
    (default 1).  Pure function of its arguments. *)

val engine_label : engine_choice -> string
val preprocess_label : preprocess_level -> string
val restarts_label : Types.restart_policy -> string

val feature_fields : features -> (string * float) list
(** The features as ordered [(name, value)] pairs — the layout used by
    [--explain-tuning] and the bench emitter. *)

val pp_features : Format.formatter -> features -> unit
val pp_policy : Format.formatter -> policy -> unit

val emit_metrics : Metrics.t -> features -> policy -> unit
(** Record the [autotune/*] instruments: the [runs] counter, feature
    gauges ([clause_var_ratio], [gate_like_frac], [probe_density],
    [extraction_seconds]), the per-engine choice counters and the
    [guided] counter.  See [docs/METRICS.md]. *)
