(* Wall clock clamped monotone.  OCaml's stdlib exposes no monotonic
   clock and this project adds no C stubs, so [Unix.gettimeofday] is
   clamped through an atomic max: [now_s] never goes backwards even if
   the wall clock is stepped.  The float is stored boxed; the CAS
   compares the box we just read, so a lost race simply retries. *)

let last = Atomic.make neg_infinity

let rec clamp t =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

let now_s () = clamp (Unix.gettimeofday ())
let epoch = now_s ()
let since_start_s () = now_s () -. epoch
