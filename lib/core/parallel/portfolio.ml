(* Parallel portfolio solving on OCaml 5 domains: N diversified CDCL
   workers race on one formula, the first definitive answer wins, and
   strong learned clauses flow between workers through a mutex-protected
   pool.  See portfolio.mli for the contract. *)

module Lit = Cnf.Lit

(* --- clause sharing ------------------------------------------------------ *)

type sharing = {
  share : bool;
  max_lbd : int;
  max_len : int;
  capacity : int;
}

let default_sharing = { share = true; max_lbd = 6; max_len = 30; capacity = 20_000 }

(* The shared pool is an append-only array of exported clauses guarded by
   one mutex.  Workers keep a private read cursor, so an import drains
   exactly the entries published since the worker's previous level-0
   boundary; origin tags stop a worker re-importing its own exports.
   Append-only keeps cursors valid without any per-worker bookkeeping in
   the pool itself. *)
module Pool = struct
  type entry = { origin : int; lbd : int; lits : Lit.t list }

  type t = {
    lock : Mutex.t;
    mutable entries : entry array;
    mutable n : int;
    capacity : int;
    mutable dropped : int;
  }

  let dummy = { origin = -1; lbd = 0; lits = [] }

  let create capacity =
    { lock = Mutex.create (); entries = Array.make 64 dummy; n = 0; capacity;
      dropped = 0 }

  let publish p e =
    Mutex.lock p.lock;
    if p.n >= p.capacity then p.dropped <- p.dropped + 1
    else begin
      if p.n = Array.length p.entries then begin
        let bigger = Array.make (2 * p.n) dummy in
        Array.blit p.entries 0 bigger 0 p.n;
        p.entries <- bigger
      end;
      p.entries.(p.n) <- e;
      p.n <- p.n + 1
    end;
    Mutex.unlock p.lock

  (* Entries published since [cursor], newest last, skipping [self]'s own;
     returns the new cursor. *)
  let drain p ~cursor ~self =
    Mutex.lock p.lock;
    let stop = p.n in
    let fresh = ref [] in
    for i = stop - 1 downto cursor do
      let e = p.entries.(i) in
      if e.origin <> self then fresh := e :: !fresh
    done;
    Mutex.unlock p.lock;
    (!fresh, stop)

  let size p =
    Mutex.lock p.lock;
    let n = p.n in
    Mutex.unlock p.lock;
    n

  let dropped p =
    Mutex.lock p.lock;
    let n = p.dropped in
    Mutex.unlock p.lock;
    n
end

(* --- options -------------------------------------------------------------- *)

type options = {
  jobs : int;
  config : Types.config;
  sharing : sharing;
  timeout : float option;
  metrics : Metrics.t option;
  trace : Trace.sink option;
}

let default_options =
  { jobs = max 1 (Domain.recommended_domain_count ());
    config = Types.default;
    sharing = default_sharing;
    timeout = None;
    metrics = None;
    trace = None }

(* --- diversification ------------------------------------------------------ *)

(* Worker 0 always runs the base configuration unchanged — the portfolio
   strictly adds workers, it never loses the sequential behaviour.  The
   others perturb exactly the levers Sec. 6 of the paper singles out:
   the restart policy, the random seed, and the branching order (through
   the random-decision frequency), plus the phase-saving polarity
   source.  Frequent-restart members double as eager importers, since
   imports happen at level-0 boundaries. *)
let diversify ~base i =
  if i = 0 then base
  else
    let restarts =
      match i mod 4 with
      | 1 -> Types.Luby 50
      | 2 -> Types.Geometric (100, 1.5)
      | 3 -> Types.Luby 200
      | _ -> Types.Luby 100
    in
    {
      base with
      Types.random_seed = base.Types.random_seed + (i * 1_000_003);
      restarts;
      random_decision_freq =
        Float.max base.Types.random_decision_freq
          (0.02 *. float_of_int (((i - 1) mod 3) + 1));
      phase_saving = (if i mod 2 = 0 then not base.Types.phase_saving
                      else base.Types.phase_saving);
    }

(* --- results -------------------------------------------------------------- *)

type worker_report = {
  worker_config : Types.config;
  worker_outcome : Types.outcome;
  worker_stats : Types.stats;
}

type result = {
  outcome : Types.outcome;
  winner : int option;
  per_worker : worker_report array;
  stats : Types.stats;
  pool_size : int;
  time_seconds : float;
}

let definitive = function
  | Types.Sat _ | Types.Unsat | Types.Unsat_assuming _ -> true
  | Types.Unknown _ -> false

let validate_sat f outcome =
  match outcome with
  | Types.Sat m ->
    let value v = v < Array.length m && m.(v) in
    if Cnf.Formula.eval value f then outcome
    else Types.Unknown "portfolio: model failed validation"
  | o -> o

(* --- wall-clock interruption ---------------------------------------------- *)

(* The monitor re-asserts the interrupt every tick until told to stop:
   [Cdcl.interrupt] requests are consumed one search at a time, so a
   single press could be swallowed by a solve that finishes for another
   reason just before the deadline. *)
let spawn_monitor ~seconds targets =
  let stop = Atomic.make false in
  let fired = Atomic.make false in
  let deadline = Unix.gettimeofday () +. seconds in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          if Unix.gettimeofday () >= deadline then begin
            Atomic.set fired true;
            List.iter Cdcl.interrupt targets
          end;
          Unix.sleepf 0.005
        done)
  in
  (d, stop, fired)

let run_with_timeout ?timeout targets body =
  match timeout with
  | None -> (body (), false)
  | Some seconds ->
    let mon, stop, fired = spawn_monitor ~seconds targets in
    let r = body () in
    Atomic.set stop true;
    Domain.join mon;
    (r, Atomic.get fired)

(* --- sequential path (jobs = 1) ------------------------------------------- *)

let solve_sequential ~opts f =
  let config = opts.config and timeout = opts.timeout in
  let t0 = Unix.gettimeofday () in
  let s = Cdcl.create ~config f in
  (match opts.metrics with
   | Some m ->
     Cdcl.set_instruments s (Some (Metrics.solver_instruments m));
     Cdcl.set_metrics s (Some m);
     Metrics.set_gauge (Metrics.gauge m "portfolio/jobs") 1.
   | None -> ());
  Cdcl.set_tracer s opts.trace;
  let outcome, timed_out =
    run_with_timeout ?timeout [ s ] (fun () -> Cdcl.solve s)
  in
  let outcome =
    match outcome with
    | Types.Unknown "interrupted" when timed_out -> Types.Unknown "timeout"
    | o -> validate_sat f o
  in
  let stats = Types.copy_stats (Cdcl.stats s) in
  (match opts.metrics with
   | Some m -> Metrics.add_stats m stats
   | None -> ());
  {
    outcome;
    winner = (if definitive outcome then Some 0 else None);
    per_worker = [| { worker_config = config; worker_outcome = outcome;
                      worker_stats = stats } |];
    stats;
    pool_size = 0;
    time_seconds = Unix.gettimeofday () -. t0;
  }

(* --- the portfolio --------------------------------------------------------- *)

let solve_parallel ~opts f =
  let t0 = Unix.gettimeofday () in
  let jobs = opts.jobs in
  let sharing = opts.sharing in
  let pool = Pool.create sharing.capacity in
  let configs = Array.init jobs (fun i -> diversify ~base:opts.config i) in
  (* solvers are created in the parent domain, before the workers spawn:
     the spawn is the publication point, and the parent keeps the
     handles it needs for [interrupt] *)
  let solvers = Array.map (fun cfg -> Cdcl.create ~config:cfg f) configs in
  (* each worker gets a private registry and trace sink — no locking on
     the emission paths — merged into the caller's after the join *)
  let worker_regs =
    match opts.metrics with
    | Some _ -> Array.init jobs (fun _ -> Metrics.create ())
    | None -> [||]
  in
  let worker_sinks =
    match opts.trace with
    | Some _ -> Array.init jobs (fun i -> Trace.make_sink ~worker:i ())
    | None -> [||]
  in
  Array.iteri
    (fun i s ->
       if worker_regs <> [||] then begin
         Cdcl.set_instruments s
           (Some (Metrics.solver_instruments worker_regs.(i)));
         Cdcl.set_metrics s (Some worker_regs.(i))
       end;
       if worker_sinks <> [||] then Cdcl.set_tracer s (Some worker_sinks.(i)))
    solvers;
  let lock = Mutex.create () in
  let winner = ref None in
  let outcomes = Array.make jobs None in
  let interrupt_others i =
    Array.iteri (fun j s -> if j <> i then Cdcl.interrupt s) solvers
  in
  let install_sharing i s =
    if sharing.share then begin
      let st = Cdcl.stats s in
      Cdcl.set_learn_hook s
        (Some
           (fun lits lbd ->
              if lbd <= sharing.max_lbd && List.length lits <= sharing.max_len
              then begin
                st.Types.exported <- st.Types.exported + 1;
                if worker_sinks <> [||] then
                  Trace.emit worker_sinks.(i)
                    (Trace.Export { lbd; size = List.length lits });
                Pool.publish pool { Pool.origin = i; lbd; lits }
              end));
      let cursor = ref 0 in
      Cdcl.set_restart_hook s
        (Some
           (fun () ->
              let fresh, stop = Pool.drain pool ~cursor:!cursor ~self:i in
              cursor := stop;
              List.iter
                (fun e -> Cdcl.import_clause ~lbd:e.Pool.lbd s e.Pool.lits)
                fresh))
    end
  in
  Array.iteri install_sharing solvers;
  let worker i =
    let s = solvers.(i) in
    let o = Cdcl.solve s in
    Mutex.lock lock;
    outcomes.(i) <- Some o;
    if definitive o && !winner = None then winner := Some (i, o);
    Mutex.unlock lock;
    (* losing workers stop at their next loop iteration *)
    if definitive o then interrupt_others i
  in
  let domains = Array.init jobs (fun i -> Domain.spawn (fun () -> worker i)) in
  let deadline = Option.map (fun s -> t0 +. s) opts.timeout in
  let timed_out = ref false in
  let finished () =
    Mutex.lock lock;
    let done_ =
      !winner <> None || Array.for_all Option.is_some outcomes
    in
    Mutex.unlock lock;
    done_
  in
  while not (finished ()) do
    (match deadline with
     | Some d when Unix.gettimeofday () >= d ->
       if not !timed_out then begin
         timed_out := true;
         Array.iter Cdcl.interrupt solvers
       end
       else
         (* keep pressing: each request is consumed per solve iteration *)
         Array.iter
           (fun s -> if not (Cdcl.interrupt_requested s) then Cdcl.interrupt s)
           solvers
     | _ -> ());
    Unix.sleepf 0.002
  done;
  (* a winner may still be racing the stragglers: stop them and join *)
  (match !winner with Some (i, _) -> interrupt_others i | None -> ());
  Array.iter Domain.join domains;
  let per_worker =
    Array.init jobs (fun i ->
        {
          worker_config = configs.(i);
          worker_outcome =
            (match outcomes.(i) with Some o -> o | None -> assert false);
          worker_stats = Types.copy_stats (Cdcl.stats solvers.(i));
        })
  in
  let stats = Types.mk_stats () in
  Array.iter (fun w -> Types.add_stats_into stats w.worker_stats) per_worker;
  let winner_idx, outcome =
    match !winner with
    | Some (i, o) -> (Some i, validate_sat f o)
    | None ->
      if !timed_out then (None, Types.Unknown "timeout")
      else (None, per_worker.(0).worker_outcome)
  in
  (match opts.metrics with
   | Some m ->
     Array.iter (fun r -> Metrics.merge_into ~into:m r) worker_regs;
     Metrics.add_stats m stats;
     Metrics.set_gauge (Metrics.gauge m "portfolio/jobs") (float_of_int jobs);
     Metrics.set_gauge
       (Metrics.gauge m "portfolio/pool_size")
       (float_of_int (Pool.size pool));
     Metrics.incr ~by:pool.Pool.dropped
       (Metrics.counter m "portfolio/pool_dropped");
     Metrics.set_gauge
       (Metrics.gauge m "portfolio/winner")
       (match winner_idx with Some i -> float_of_int i | None -> -1.)
   | None -> ());
  (match opts.trace with
   | Some dst -> Array.iter (fun s -> Trace.absorb ~into:dst s) worker_sinks
   | None -> ());
  {
    outcome;
    winner = winner_idx;
    per_worker;
    stats;
    pool_size = Pool.size pool;
    time_seconds = Unix.gettimeofday () -. t0;
  }

let solve ?(options = default_options) f =
  if options.jobs <= 1 then solve_sequential ~opts:options f
  else solve_parallel ~opts:options f
