(* March-style lookahead cube generation.  See cube.mli for the
   contract; Cdcl's probing primitives (probe_push / probe_assert) do
   the propagation work. *)

module Lit = Cnf.Lit

type options = {
  depth : int;
  max_cubes : int;
  candidates : int;
  max_probes : int;
  seed : int;
}

let default_options =
  { depth = 8; max_cubes = 2048; candidates = 24; max_probes = 400_000;
    seed = 1 }

type t = {
  cubes : Lit.t list list;
  units : Lit.t list;
  refuted : Lit.t list list;
  decided : Types.outcome option;
  probes : int;
  failed_literals : int;
  stats : Types.stats;
  time_seconds : float;
}

let generate ?(options = default_options) ?metrics ?trace f =
  let t0 = Unix.gettimeofday () in
  (match metrics with
   | Some m -> Metrics.phase_begin m "cube/lookahead"
   | None -> ());
  let opts =
    { options with
      depth = max 1 options.depth;
      max_cubes = max 1 options.max_cubes;
      candidates = max 1 options.candidates;
      max_probes = max 1 options.max_probes }
  in
  let cfg = { Types.default with Types.random_seed = opts.seed } in
  let s = Cdcl.create ~config:cfg f in
  let nvars = Cdcl.nvars s in
  (* static literal weights, Jeroslow–Wang style: a clause of length k
     contributes 2^(2-k) to each literal, so falsifying a literal of a
     short clause counts as a bigger reduction *)
  let w = Array.make (max 2 (2 * nvars)) 0. in
  Cnf.Formula.iter_clauses f (fun c ->
      let lits = Cnf.Clause.to_list c in
      let k = List.length lits in
      let inc = if k >= 16 then 0. else 2. ** float_of_int (2 - k) in
      List.iter
        (fun l -> if l < Array.length w then w.(l) <- w.(l) +. inc)
        lits);
  let cubes = ref [] and units = ref [] and refuted = ref [] in
  let n_cubes = ref 0 in
  let probes = ref 0 and failed = ref 0 in
  let decided = ref None in
  let full_model () =
    (* propagation fixpoint with every variable assigned and no
       falsified clause: the trail is a model *)
    Types.Sat (Array.init nvars (fun v -> Cdcl.value_var s v = 1))
  in
  (* reduction of one probe: trail growth plus the weight of the clauses
     each new assignment shortens *)
  let reduction from_ to_ =
    let r = ref 0. in
    for i = from_ to to_ - 1 do
      r := !r +. 1. +. w.(Lit.negate (Cdcl.trail_get s i))
    done;
    !r
  in
  let emit path depth =
    incr n_cubes;
    let cube = List.rev path in
    cubes := cube :: !cubes;
    match trace with
    | Some tr ->
      Trace.emit tr (Trace.Cube_emit { depth; size = List.length cube })
    | None -> ()
  in
  (* candidate preselection: the top unassigned variables by static
     weight (both phases must matter, hence the march product+sum) *)
  let static_score v =
    let p = w.(Lit.pos v) and n = w.(Lit.neg_of_var v) in
    (p *. n) +. p +. n
  in
  let pick_candidates () =
    let free = ref [] and n = ref 0 in
    for v = nvars - 1 downto 0 do
      if Cdcl.value_var s v < 0 then begin
        free := v :: !free;
        incr n
      end
    done;
    if !n <= opts.candidates then !free
    else begin
      let arr = Array.of_list !free in
      Array.sort
        (fun a b ->
           let c = Float.compare (static_score b) (static_score a) in
           if c <> 0 then c else compare a b)
        arr;
      Array.to_list (Array.sub arr 0 opts.candidates)
    end
  in
  let rec node ~decisions ~path ~depth =
    if !decided <> None then ()
    else if not (Cdcl.consistent s) then decided := Some Types.Unsat
    else if Cdcl.trail_size s >= nvars then decided := Some (full_model ())
    else if
      depth >= opts.depth || !n_cubes >= opts.max_cubes
      || !probes >= opts.max_probes
    then emit path depth
    else begin
      (* lookahead: probe both phases of every candidate; failed
         literals fold back into the current prefix as they surface *)
      let refuted_here = ref false in
      let best = ref None in
      let implied = ref path in
      let assert_implied l =
        incr failed;
        if Cdcl.probe_assert s l then begin
          if Cdcl.decision_level s = 0 then units := l :: !units
          else implied := l :: !implied
        end
        else refuted_here := true
      in
      List.iter
        (fun v ->
           if
             (not !refuted_here)
             && !decided = None
             && Cdcl.value_var s v < 0
             && !probes < opts.max_probes
           then begin
             let lp = Lit.pos v and ln = Lit.neg_of_var v in
             let probe l =
               incr probes;
               match Cdcl.probe_push s l with
               | Cdcl.Probe_conflict -> None
               | Cdcl.Probe_ok (a, b) ->
                 let r = reduction a b in
                 Cdcl.probe_pop s;
                 Some r
             in
             let rp = probe lp in
             let rn = probe ln in
             match (rp, rn) with
             | None, None ->
               (* both phases conflict: the prefix itself is refuted *)
               refuted_here := true
             | None, Some _ -> assert_implied ln
             | Some _, None -> assert_implied lp
             | Some a, Some b ->
               let score = (a *. b) +. a +. b in
               (match !best with
                | Some (s0, _, _, _) when s0 >= score -> ()
                | _ -> best := Some (score, v, a, b))
           end)
        (pick_candidates ());
      if !decided <> None then ()
      else if !refuted_here then begin
        if Cdcl.decision_level s = 0 || not (Cdcl.consistent s) then
          decided := Some Types.Unsat
        else
          (* ¬(decision prefix) is an implicate: the implied literals all
             follow from the decisions, so the short record suffices *)
          refuted := List.rev decisions :: !refuted
      end
      else if Cdcl.trail_size s >= nvars then decided := Some (full_model ())
      else begin
        let v, r_pos, r_neg =
          match !best with
          | Some (_, v, a, b) when Cdcl.value_var s v < 0 -> (v, a, b)
          | _ ->
            (* every scored candidate got assigned by a later failed
               literal (or the probe budget ran dry): take the first
               free variable *)
            let rec first v =
              if Cdcl.value_var s v < 0 then v else first (v + 1)
            in
            (first 0, 1., 1.)
        in
        (* stronger-reduction phase first: refutations surface earlier *)
        let l1, l2 =
          if r_pos >= r_neg then (Lit.pos v, Lit.neg_of_var v)
          else (Lit.neg_of_var v, Lit.pos v)
        in
        let branch l =
          if !decided = None then
            match Cdcl.probe_push s l with
            | Cdcl.Probe_conflict ->
              (* the probe scores are stale once failed literals landed
                 in between; a branch can close that probing left open *)
              refuted := List.rev (l :: decisions) :: !refuted
            | Cdcl.Probe_ok _ ->
              node ~decisions:(l :: decisions) ~path:(l :: !implied)
                ~depth:(depth + 1);
              Cdcl.probe_pop s
        in
        branch l1;
        branch l2
      end
    end
  in
  if not (Cdcl.propagate_root s) then decided := Some Types.Unsat
  else node ~decisions:[] ~path:[] ~depth:0;
  (* every branch refuted and nothing emitted: the cover is empty, the
     formula is unsatisfiable *)
  if !decided = None && !cubes = [] then decided := Some Types.Unsat;
  let time_seconds = Unix.gettimeofday () -. t0 in
  (match metrics with
   | Some m ->
     let c name v = Metrics.incr ~by:v (Metrics.counter m name) in
     c "cube/generated" !n_cubes;
     c "cube/probes" !probes;
     c "cube/failed_literals" !failed;
     c "cube/units" (List.length !units);
     c "cube/refuted_branches" (List.length !refuted);
     Metrics.add_stats m (Cdcl.stats s);
     Metrics.phase_end m "cube/lookahead"
   | None -> ());
  {
    cubes = List.rev !cubes;
    units = List.rev !units;
    refuted = List.rev !refuted;
    decided = !decided;
    probes = !probes;
    failed_literals = !failed;
    stats = Types.copy_stats (Cdcl.stats s);
    time_seconds;
  }
