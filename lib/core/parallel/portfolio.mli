(** Parallel portfolio solving with learned-clause sharing.

    Section 6 of the paper identifies randomization of the branching
    heuristic and of the restart policy as one of the most effective
    levers on hard EDA instances.  The modern realization is a
    {e portfolio}: [jobs] diversified CDCL workers race on the same
    formula on OCaml 5 domains, the first definitive answer (SAT /
    UNSAT) wins, and workers exchange strong learned clauses.

    Sharing policy: a worker {e exports} a learned clause when its
    literal-block distance and length are within the {!sharing} bounds,
    into a mutex-protected append-only pool; every worker {e imports}
    the clauses published by the others at its level-0 boundaries
    (search entry and every restart) via {!Cdcl.import_clause}.  The
    import is sound because all workers solve the {e same} clause set
    (identical formula, and imported clauses are themselves implicates),
    so every exported clause is an implicate of the shared formula.

    Determinism: [jobs = 1] takes the plain sequential {!Cdcl} path —
    same outcome and same statistics as [Cdcl.solve] on the same config
    and seed — so existing deterministic experiments are unaffected.

    Satisfiable answers are validated against the formula before being
    reported; unsatisfiable answers can be cross-checked against
    {!Proof.solve_certified} (the property-test suite does). *)

type sharing = {
  share : bool;      (** master switch for clause exchange *)
  max_lbd : int;     (** export clauses with LBD at most this (glue bound) *)
  max_len : int;     (** ... and at most this many literals *)
  capacity : int;    (** pool cap; further exports are dropped *)
}

val default_sharing : sharing
(** [share = true], LBD ≤ 6, length ≤ 30, capacity 20_000.  The LBD
    bound is a policy knob, not a constant: [satsolve --share-lbd]
    threads a user-chosen bound through both the portfolio and the
    cube-and-conquer workers ({!module:Conquer}). *)

(** The shared clause pool behind the exchange: a mutex-protected
    append-only array.  Each consumer keeps a private read cursor, so a
    drain returns exactly the entries published since its previous
    level-0 boundary; origin tags stop a worker re-importing its own
    exports.  Exposed so other multi-worker engines ({!module:Conquer})
    share clauses through the same structure. *)
module Pool : sig
  type entry = { origin : int; lbd : int; lits : Cnf.Lit.t list }

  type t

  val create : int -> t
  (** [create capacity] — entries published beyond [capacity] are
      counted as dropped, not stored. *)

  val publish : t -> entry -> unit

  val drain : t -> cursor:int -> self:int -> entry list * int
  (** Entries published since [cursor], oldest first, skipping those
      with origin [self]; returns the new cursor. *)

  val size : t -> int
  val dropped : t -> int
end

type options = {
  jobs : int;                (** number of worker domains *)
  config : Types.config;     (** base configuration (worker 0 verbatim) *)
  sharing : sharing;
  timeout : float option;    (** wall-clock seconds; [Unknown "timeout"] *)
  metrics : Metrics.t option;
      (** each worker observes into a private registry (standard
          {!Metrics.solver_instruments}); after the race settles the
          per-worker registries are merged into this one, the aggregate
          statistics are added, and the [portfolio/jobs],
          [portfolio/pool_size], [portfolio/pool_dropped] and
          [portfolio/winner] metrics are set *)
  trace : Trace.sink option;
      (** each worker emits into a private sink tagged with its worker
          id (plus an [export] event per shared clause); the sinks are
          absorbed into this one after the join, so {!Trace.merged} /
          {!Trace.write_file} yield a time-ordered interleaving that is
          monotone per worker *)
}

val default_options : options
(** [jobs = Domain.recommended_domain_count ()], default config and
    sharing, no timeout, no observability. *)

val diversify : base:Types.config -> int -> Types.config
(** The configuration worker [i] runs: worker 0 is [base] unchanged;
    workers [i > 0] perturb the random seed, the restart policy and the
    random-decision frequency (branching-order randomization, Sec. 6),
    and alternate the phase-saving polarity source. *)

type worker_report = {
  worker_config : Types.config;
  worker_outcome : Types.outcome;
  worker_stats : Types.stats;
      (** includes [exported] / [imported] / [interrupts] counters *)
}

type result = {
  outcome : Types.outcome;      (** the winning answer *)
  winner : int option;          (** index of the first definitive worker *)
  per_worker : worker_report array;
  stats : Types.stats;          (** aggregate over all workers *)
  pool_size : int;              (** clauses published to the shared pool *)
  time_seconds : float;
}

val solve : ?options:options -> Cnf.Formula.t -> result
(** Races the workers; returns when a definitive answer is in (the
    losers are interrupted cooperatively and joined), when every worker
    gave up ([Unknown]), or when the timeout fires.  Never deadlocks:
    workers check the interrupt flag once per search-loop iteration. *)
