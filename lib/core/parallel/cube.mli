(** March-style lookahead cube generation (the "cube" half of
    cube-and-conquer).

    Cube-and-conquer [Heule–Kullmann–Wieringa–Biere, HVC'11] splits a
    hard formula into many {e cubes} (conjunctions of literals) whose
    disjunction covers the search space, then solves [F ∧ cube] for each
    cube independently — CDCL is good at the deep, narrow subproblems
    while lookahead is good at picking the globally important splitting
    variables.  This module is the lookahead half; {!module:Conquer}
    farms the cubes out to worker domains.

    Splitting variables are chosen by {e measured} propagation, not a
    static heuristic: each candidate variable is probed in both phases
    through the watcher-based propagator ({!Cdcl.probe_push}), the
    reduction of a probe is its trail growth plus a Jeroslow–Wang-style
    weight of the clauses it shortens, and the mixed difference score
    [r⁺·r⁻ + r⁺ + r⁻] picks the variable whose {e both} phases simplify
    the formula most.  Probing doubles as failed-literal detection: a
    probe that conflicts implies its negation under the current prefix
    (a level-0 unit when the prefix is empty), and a variable whose both
    phases conflict refutes the prefix itself.

    Soundness of the cover: for every inner node the two branches [l]
    and [¬l] are exhaustive, so

    [F  ≡  F ∧ (⋁ cubes ∨ ⋁ refuted)]   and each refuted prefix has
    been shown unsatisfiable by propagation, hence
    [F  ≡  F ∧ units ∧ (⋁ cubes)]  with [¬refuted_i] implicates of [F].

    The generator is deterministic: same formula, same options (the seed
    feeds the underlying solver config) yield identical cubes, units and
    refuted prefixes — tested by the cube-conquer suite. *)

type options = {
  depth : int;       (** emit a cube after this many decisions *)
  max_cubes : int;   (** stop splitting once this many cubes exist *)
  candidates : int;  (** lookahead candidates probed per node *)
  max_probes : int;  (** global probe budget; cuts off lookahead *)
  seed : int;        (** random seed of the probing solver's config *)
}

val default_options : options
(** depth 8, 2048 cubes, 24 candidates, 400k probes, seed 1. *)

type t = {
  cubes : Cnf.Lit.t list list;
      (** the cover, in generation order; each cube lists its decision
          literals and the literals lookahead found implied along the
          branch (redundant but they seed the conquer solver's trail) *)
  units : Cnf.Lit.t list;
      (** failed literals refuted at the root: level-0 consequences of
          [F], sound to assert globally *)
  refuted : Cnf.Lit.t list list;
      (** decision prefixes refuted during lookahead; the negation of
          each is an implicate of [F] (the conquer phase learns them) *)
  decided : Types.outcome option;
      (** [Some outcome] when lookahead alone settled the formula:
          [Sat model] if propagation completed an assignment, [Unsat] if
          the root was refuted or every branch was; in that case [cubes]
          need not cover anything *)
  probes : int;            (** probes performed *)
  failed_literals : int;   (** failed literals detected (incl. units) *)
  stats : Types.stats;     (** propagation counts of the probing solver *)
  time_seconds : float;
}

val generate :
  ?options:options -> ?metrics:Metrics.t -> ?trace:Trace.sink ->
  Cnf.Formula.t -> t
(** Run the lookahead DFS.  Emits [cube/generated], [cube/probes],
    [cube/failed_literals], [cube/units] and [cube/refuted_branches]
    counters under the [cube/lookahead] phase, and a {!Trace.Cube_emit}
    event per cube. *)
