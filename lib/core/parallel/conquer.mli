(** The "conquer" half of cube-and-conquer.

    {!module:Cube} turns a hard formula into a cover of cubes; this
    module farms the cubes out to [jobs] worker domains.  Each worker
    owns one incremental {!Session} on the full formula — pre-loaded
    with the units and refuted-prefix implicates lookahead already
    proved — and solves cubes as {e assumption queries}, so learned
    clauses, activities and phases carry over from cube to cube.  Cubes
    live in per-worker work-stealing deques: a worker pops its own
    front (split children stay hot in its session) and steals from the
    back of a neighbour when it runs dry (the oldest, coarsest cube).

    Strong learned clauses flow between workers through the
    {!Portfolio.Pool}; the exchange is sound because a clause learned
    under an assumption query is an implicate of the clause database
    alone (assumption literals carry dummy reasons and are never
    resolved away), hence valid in every other cube.

    Dynamic splitting: a cube whose query exhausts its conflict budget
    ([cutoff], doubled per generation) is split on the most active
    root-unassigned variable outside the cube and both halves requeued,
    until [max_splits] is reached — after which over-budget cubes run
    unbounded.  Refuting {e every} cube in the cover proves UNSAT; any
    SAT cube answers SAT (models are re-validated against the formula
    before being reported). *)

type options = {
  jobs : int;                (** number of conquer worker domains *)
  cube : Cube.options;       (** lookahead (generation) options *)
  config : Types.config;     (** base config; worker [i] reseeds it *)
  sharing : Portfolio.sharing;  (** clause-exchange policy *)
  cutoff : int;              (** base conflict budget per cube *)
  max_splits : int;          (** dynamic-split cap; then run unbounded *)
  timeout : float option;    (** wall-clock seconds; [Unknown "timeout"] *)
  stop : bool Atomic.t option;
      (** external cancellation flag (e.g. a service scheduler): once
          true the run winds down and reports [Unknown "interrupted"] *)
  metrics : Metrics.t option;
      (** per-worker registries merged in after the join, plus the
          [cube/*] counters and gauges (see docs/METRICS.md) *)
  trace : Trace.sink option;
      (** per-worker sinks absorbed after the join: [cube-emit],
          [cube-solve], [cube-split] and the usual solver events *)
}

val default_options : options
(** [jobs = Domain.recommended_domain_count ()], default cube options
    and sharing, cutoff 10_000 conflicts, 4096 splits, no timeout. *)

type result = {
  outcome : Types.outcome;
  lookahead : Cube.t;   (** the generator's output (cubes, units, ...) *)
  solved_cubes : int;   (** cubes settled definitively by workers *)
  splits : int;         (** dynamic splits performed *)
  pool_size : int;      (** clauses published to the exchange pool *)
  stats : Types.stats;  (** aggregate: lookahead + all workers *)
  time_seconds : float;
}

val solve : ?options:options -> Cnf.Formula.t -> result
(** Generate the cube cover, then conquer it.  If lookahead alone
    settles the formula (root refuted, all branches refuted, or
    propagation completed a model) no workers are spawned. *)
