(* Conquer half of cube-and-conquer: a work-stealing deque of cubes
   served by N worker domains, each solving cubes as assumption queries
   on its own incremental session, with learned-clause exchange through
   the portfolio pool.  See conquer.mli for the contract. *)

module Lit = Cnf.Lit

type options = {
  jobs : int;
  cube : Cube.options;
  config : Types.config;
  sharing : Portfolio.sharing;
  cutoff : int;
  max_splits : int;
  timeout : float option;
  stop : bool Atomic.t option;
  metrics : Metrics.t option;
  trace : Trace.sink option;
}

let default_options =
  {
    jobs = max 1 (Domain.recommended_domain_count ());
    cube = Cube.default_options;
    config = Types.default;
    sharing = Portfolio.default_sharing;
    cutoff = 10_000;
    max_splits = 4096;
    timeout = None;
    stop = None;
    metrics = None;
    trace = None;
  }

type result = {
  outcome : Types.outcome;
  lookahead : Cube.t;
  solved_cubes : int;
  splits : int;
  pool_size : int;
  stats : Types.stats;
  time_seconds : float;
}

(* Per-worker deque under one mutex: the owner pushes and pops at the
   front (LIFO keeps split children hot), thieves take from the back
   (FIFO steals the oldest, largest-grained cube).  Cube counts are a
   few thousand at most, so the O(n) back removal never matters. *)
module Deque = struct
  type 'a t = { lock : Mutex.t; mutable items : 'a list }

  let create () = { lock = Mutex.create (); items = [] }

  let push d x =
    Mutex.lock d.lock;
    d.items <- x :: d.items;
    Mutex.unlock d.lock

  let pop d =
    Mutex.lock d.lock;
    let r =
      match d.items with
      | [] -> None
      | x :: tl ->
        d.items <- tl;
        Some x
    in
    Mutex.unlock d.lock;
    r

  let steal d =
    Mutex.lock d.lock;
    let r =
      match List.rev d.items with
      | [] -> None
      | x :: rtl ->
        d.items <- List.rev rtl;
        Some x
    in
    Mutex.unlock d.lock;
    r
end

type entry = { lits : Lit.t list; gen : int; unbounded : bool }

let validate_sat f outcome =
  match outcome with
  | Types.Sat m ->
    let value v = v < Array.length m && m.(v) in
    if Cnf.Formula.eval value f then outcome
    else Types.Unknown "cube-conquer: model failed validation"
  | o -> o

(* The splitting variable of an over-budget cube: the root-unassigned
   variable outside the cube with the highest VSIDS activity in the
   worker's own solver — the conquer-side analogue of the lookahead
   score, but free, since the activities are already there. *)
let pick_split sess cube =
  let s = Session.raw sess in
  let n = Cdcl.nvars s in
  let in_cube = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace in_cube (Lit.var l) ()) cube;
  let best = ref None in
  for v = 0 to n - 1 do
    if Cdcl.value_var s v < 0 && not (Hashtbl.mem in_cube v) then begin
      let a = Cdcl.var_activity s v in
      match !best with
      | Some (a0, _) when a0 >= a -> ()
      | _ -> best := Some (a, v)
    end
  done;
  Option.map snd !best

let conquer ~opts ~t0 ~la f =
  (match opts.metrics with
   | Some m -> Metrics.phase_begin m "cube/conquer"
   | None -> ());
  let jobs = opts.jobs in
  let sharing = opts.sharing in
  let pool = Portfolio.Pool.create sharing.Portfolio.capacity in
  let deques = Array.init jobs (fun _ -> Deque.create ()) in
  List.iteri
    (fun i c ->
       Deque.push deques.(i mod jobs) { lits = c; gen = 0; unbounded = false })
    la.Cube.cubes;
  let outstanding = Atomic.make (List.length la.Cube.cubes) in
  let splits = Atomic.make 0 in
  let solved = Atomic.make 0 in
  let finished = Atomic.make false in
  let lock = Mutex.create () in
  let decided = ref None in
  let configs =
    Array.init jobs (fun i ->
        { opts.config with
          Types.random_seed = opts.config.Types.random_seed + (i * 7919) })
  in
  (* each worker owns an incremental session pre-loaded with what
     lookahead already proved: the level-0 units and the negations of
     the refuted decision prefixes (all implicates of [f]) *)
  let sessions =
    Array.map
      (fun cfg ->
         let sess = Session.of_formula ~config:cfg f in
         List.iter (fun u -> Session.add_clause sess [ u ]) la.Cube.units;
         List.iter
           (fun prefix ->
              Session.add_clause sess (List.map Lit.negate prefix))
           la.Cube.refuted;
         sess)
      configs
  in
  let declare o =
    Mutex.lock lock;
    if !decided = None then decided := Some o;
    Mutex.unlock lock;
    Atomic.set finished true;
    Array.iter Session.interrupt sessions
  in
  let worker_regs =
    match opts.metrics with
    | Some _ -> Array.init jobs (fun _ -> Metrics.create ())
    | None -> [||]
  in
  let worker_sinks =
    match opts.trace with
    | Some _ -> Array.init jobs (fun i -> Trace.make_sink ~worker:i ())
    | None -> [||]
  in
  Array.iteri
    (fun i sess ->
       if worker_regs <> [||] then Session.attach_metrics sess worker_regs.(i);
       if worker_sinks <> [||] then
         Session.set_tracer sess (Some worker_sinks.(i)))
    sessions;
  (* clause exchange, portfolio-style.  Clauses learned under assumption
     queries are implicates of the clause database alone (assumption
     literals carry dummy reasons and are never resolved away), so a
     clause learned in one cube is sound in every other. *)
  let install_sharing i sess =
    if sharing.Portfolio.share then begin
      let s = Session.raw sess in
      let st = Cdcl.stats s in
      Cdcl.set_learn_hook s
        (Some
           (fun lits lbd ->
              if
                lbd <= sharing.Portfolio.max_lbd
                && List.length lits <= sharing.Portfolio.max_len
              then begin
                st.Types.exported <- st.Types.exported + 1;
                if worker_sinks <> [||] then
                  Trace.emit worker_sinks.(i)
                    (Trace.Export { lbd; size = List.length lits });
                Portfolio.Pool.publish pool
                  { Portfolio.Pool.origin = i; lbd; lits }
              end));
      let cursor = ref 0 in
      Cdcl.set_restart_hook s
        (Some
           (fun () ->
              let fresh, stop =
                Portfolio.Pool.drain pool ~cursor:!cursor ~self:i
              in
              cursor := stop;
              List.iter
                (fun e ->
                   Cdcl.import_clause ~lbd:e.Portfolio.Pool.lbd s
                     e.Portfolio.Pool.lits)
                fresh))
    end
  in
  Array.iteri install_sharing sessions;
  let try_pop i =
    match Deque.pop deques.(i) with
    | Some e -> Some e
    | None ->
      let rec scan k =
        if k >= jobs then None
        else
          match Deque.steal deques.((i + k) mod jobs) with
          | Some e -> Some e
          | None -> scan (k + 1)
      in
      scan 1
  in
  let run_entry i sess e =
    (* doubling budgets per generation: a split child gets twice its
       parent's budget, so repeated splitting cannot starve a cube *)
    let budget =
      if e.unbounded then None else Some (opts.cutoff * (1 lsl min e.gen 16))
    in
    let o = Session.solve ?max_conflicts:budget ~assumptions:e.lits sess in
    if worker_sinks <> [||] then
      Trace.emit worker_sinks.(i)
        (Trace.Cube_solve
           { size = List.length e.lits; outcome = Trace.outcome_label o });
    match o with
    | Types.Sat _ as sat ->
      Atomic.incr solved;
      declare sat
    | Types.Unsat ->
      Atomic.incr solved;
      declare Types.Unsat
    | Types.Unsat_assuming _ ->
      Atomic.incr solved;
      if Atomic.fetch_and_add outstanding (-1) = 1 then
        (* that was the last open cube: the cover is exhausted *)
        declare Types.Unsat
    | Types.Unknown "interrupted" ->
      Session.clear_interrupt sess;
      Deque.push deques.(i) e
    | Types.Unknown _ when budget = None ->
      (* no per-cube budget was set, so the limit came from the user's
         config; requeueing would loop forever — report it globally *)
      declare o
    | Types.Unknown _ ->
      if Atomic.get splits >= opts.max_splits then
        Deque.push deques.(i) { e with unbounded = true }
      else begin
        match pick_split sess e.lits with
        | None -> Deque.push deques.(i) { e with unbounded = true }
        | Some v ->
          Atomic.incr splits;
          ignore (Atomic.fetch_and_add outstanding 1);
          if worker_sinks <> [||] then
            Trace.emit worker_sinks.(i)
              (Trace.Cube_split { size = List.length e.lits });
          let child l =
            { lits = e.lits @ [ l ]; gen = e.gen + 1; unbounded = false }
          in
          Deque.push deques.(i) (child (Lit.pos v));
          Deque.push deques.(i) (child (Lit.neg_of_var v))
      end
  in
  let worker i =
    let sess = sessions.(i) in
    let rec loop () =
      if Atomic.get finished then ()
      else
        match try_pop i with
        | Some e ->
          run_entry i sess e;
          loop ()
        | None ->
          if Atomic.get outstanding > 0 then begin
            Unix.sleepf 0.001;
            loop ()
          end
    in
    loop ()
  in
  let mon_stop = Atomic.make false in
  let timed_out = Atomic.make false in
  let monitor =
    match (opts.timeout, opts.stop) with
    | None, None -> None
    | _ ->
      let deadline = Option.map (fun s -> t0 +. s) opts.timeout in
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get mon_stop) do
               let fire_timeout =
                 match deadline with
                 | Some d -> Unix.gettimeofday () >= d
                 | None -> false
               in
               let fire_stop =
                 match opts.stop with
                 | Some a -> Atomic.get a
                 | None -> false
               in
               if fire_timeout then Atomic.set timed_out true;
               if fire_timeout || fire_stop then begin
                 Atomic.set finished true;
                 (* keep pressing: requests are consumed per solve *)
                 Array.iter Session.interrupt sessions
               end;
               Unix.sleepf 0.005
             done))
  in
  let domains = Array.init jobs (fun i -> Domain.spawn (fun () -> worker i)) in
  Array.iter Domain.join domains;
  Atomic.set mon_stop true;
  Option.iter Domain.join monitor;
  let outcome =
    match !decided with
    | Some (Types.Sat _ as sat) -> validate_sat f sat
    | Some o -> o
    | None ->
      if Atomic.get outstanding <= 0 then Types.Unsat
      else if Atomic.get timed_out then Types.Unknown "timeout"
      else Types.Unknown "interrupted"
  in
  let stats = Types.mk_stats () in
  Types.add_stats_into stats la.Cube.stats;
  Array.iter
    (fun sess -> Types.add_stats_into stats (Session.cumulative_stats sess))
    sessions;
  (match opts.metrics with
   | Some m ->
     Array.iter (fun r -> Metrics.merge_into ~into:m r) worker_regs;
     Metrics.set_gauge (Metrics.gauge m "cube/jobs") (float_of_int jobs);
     Metrics.incr ~by:(Atomic.get solved) (Metrics.counter m "cube/solved");
     Metrics.incr ~by:(Atomic.get splits) (Metrics.counter m "cube/splits");
     Metrics.set_gauge
       (Metrics.gauge m "cube/pool_size")
       (float_of_int (Portfolio.Pool.size pool));
     Metrics.incr
       ~by:(Portfolio.Pool.dropped pool)
       (Metrics.counter m "cube/pool_dropped");
     Metrics.phase_end m "cube/conquer"
   | None -> ());
  (match opts.trace with
   | Some dst -> Array.iter (fun s -> Trace.absorb ~into:dst s) worker_sinks
   | None -> ());
  {
    outcome;
    lookahead = la;
    solved_cubes = Atomic.get solved;
    splits = Atomic.get splits;
    pool_size = Portfolio.Pool.size pool;
    stats;
    time_seconds = Unix.gettimeofday () -. t0;
  }

let solve ?(options = default_options) f =
  let t0 = Unix.gettimeofday () in
  let opts =
    { options with
      jobs = max 1 options.jobs;
      cutoff = max 1 options.cutoff;
      max_splits = max 0 options.max_splits }
  in
  let la =
    Cube.generate ~options:opts.cube ?metrics:opts.metrics ?trace:opts.trace f
  in
  match la.Cube.decided with
  | Some o ->
    {
      outcome = validate_sat f o;
      lookahead = la;
      solved_cubes = 0;
      splits = 0;
      pool_size = 0;
      stats = Types.copy_stats la.Cube.stats;
      time_seconds = Unix.gettimeofday () -. t0;
    }
  | None -> conquer ~opts ~t0 ~la f
