type heuristic = Vsids | Dlis | Moms | Jeroslow_wang | Fixed_order | Random_order

type restart_policy = No_restarts | Luby of int | Geometric of int * float

type deletion_policy =
  | No_deletion
  | Size_bounded of int
  | Relevance of int * int
  | Lbd_bounded of int
  | Activity_halving

type guidance = {
  seed_activity : (int * float) list;
  seed_phase : (int * bool) list;
}

let no_guidance = { seed_activity = []; seed_phase = [] }

type config = {
  heuristic : heuristic;
  restarts : restart_policy;
  deletion : deletion_policy;
  minimize_learned : bool;
  phase_saving : bool;
  chronological : bool;
  random_seed : int;
  random_decision_freq : float;
  max_conflicts : int option;
  max_decisions : int option;
  proof_logging : bool;
  inprocessing : bool;
  inprocess_interval : int;
  guide : guidance option;
}

let default =
  {
    heuristic = Vsids;
    restarts = Luby 100;
    deletion = Activity_halving;
    minimize_learned = true;
    phase_saving = true;
    chronological = false;
    random_seed = 91648253;
    random_decision_freq = 0.0;
    max_conflicts = None;
    max_decisions = None;
    proof_logging = false;
    inprocessing = false;
    inprocess_interval = 4000;
    guide = None;
  }

let grasp_like =
  {
    default with
    heuristic = Dlis;
    restarts = No_restarts;
    deletion = Relevance (20, 5);
    phase_saving = false;
  }

type stats = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts_done : int;
  mutable learned : int;
  mutable learned_literals : int;
  mutable deleted : int;
  mutable max_level : int;
  mutable nonchrono_backjumps : int;
  mutable skipped_levels : int;
  mutable exported : int;
  mutable imported : int;
  mutable interrupts : int;
}

let mk_stats () =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts_done = 0;
    learned = 0;
    learned_literals = 0;
    deleted = 0;
    max_level = 0;
    nonchrono_backjumps = 0;
    skipped_levels = 0;
    exported = 0;
    imported = 0;
    interrupts = 0;
  }

let copy_stats s = { s with decisions = s.decisions }

(* Per-call deltas: counters subtract; [max_level] is a high-water mark,
   not a counter, so the later snapshot's value is kept. *)
let diff_stats now before =
  {
    decisions = now.decisions - before.decisions;
    propagations = now.propagations - before.propagations;
    conflicts = now.conflicts - before.conflicts;
    restarts_done = now.restarts_done - before.restarts_done;
    learned = now.learned - before.learned;
    learned_literals = now.learned_literals - before.learned_literals;
    deleted = now.deleted - before.deleted;
    max_level = now.max_level;
    nonchrono_backjumps = now.nonchrono_backjumps - before.nonchrono_backjumps;
    skipped_levels = now.skipped_levels - before.skipped_levels;
    exported = now.exported - before.exported;
    imported = now.imported - before.imported;
    interrupts = now.interrupts - before.interrupts;
  }

let add_stats_into acc d =
  acc.decisions <- acc.decisions + d.decisions;
  acc.propagations <- acc.propagations + d.propagations;
  acc.conflicts <- acc.conflicts + d.conflicts;
  acc.restarts_done <- acc.restarts_done + d.restarts_done;
  acc.learned <- acc.learned + d.learned;
  acc.learned_literals <- acc.learned_literals + d.learned_literals;
  acc.deleted <- acc.deleted + d.deleted;
  acc.max_level <- max acc.max_level d.max_level;
  acc.nonchrono_backjumps <- acc.nonchrono_backjumps + d.nonchrono_backjumps;
  acc.skipped_levels <- acc.skipped_levels + d.skipped_levels;
  acc.exported <- acc.exported + d.exported;
  acc.imported <- acc.imported + d.imported;
  acc.interrupts <- acc.interrupts + d.interrupts

let pp_stats ppf s =
  Format.fprintf ppf
    "decisions=%d propagations=%d conflicts=%d restarts=%d learned=%d \
     deleted=%d max_level=%d nonchrono=%d skipped=%d exported=%d imported=%d \
     interrupts=%d"
    s.decisions s.propagations s.conflicts s.restarts_done s.learned s.deleted
    s.max_level s.nonchrono_backjumps s.skipped_levels s.exported s.imported
    s.interrupts

type proof_step = Add of Cnf.Clause.t | Delete of Cnf.Clause.t

let pp_proof_step ppf = function
  | Add c -> Format.fprintf ppf "a %a" Cnf.Clause.pp c
  | Delete c -> Format.fprintf ppf "d %a" Cnf.Clause.pp c

type outcome =
  | Sat of bool array
  | Unsat
  | Unsat_assuming of Cnf.Lit.t list
  | Unknown of string

let pp_outcome ppf = function
  | Sat _ -> Format.pp_print_string ppf "SATISFIABLE"
  | Unsat -> Format.pp_print_string ppf "UNSATISFIABLE"
  | Unsat_assuming core ->
    Format.fprintf ppf "UNSAT under assumptions %a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Cnf.Lit.pp)
      core
  | Unknown why -> Format.fprintf ppf "UNKNOWN (%s)" why

let is_sat = function Sat _ -> true | Unsat | Unsat_assuming _ | Unknown _ -> false

let model_exn = function
  | Sat m -> m
  | Unsat | Unsat_assuming _ | Unknown _ ->
    invalid_arg "Types.model_exn: not a satisfiable outcome"
