(* Conflict-driven clause learning with two-literal watching.  The
   imperative core follows the MiniSat lineage of the GRASP architecture
   described in the paper; comments mark the Decide / Deduce / Diagnose /
   Erase roles of Figure 2. *)

module Lit = Cnf.Lit

type clause = {
  mutable lits : int array; (* lits.(0), lits.(1) are the watched literals *)
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
  mutable lbd : int; (* distinct decision levels at learning time *)
}

type plugin = {
  on_assign : Cnf.Lit.t -> unit;
  on_unassign : Cnf.Lit.t -> unit;
  decide : unit -> Cnf.Lit.t option;
  is_complete : unit -> bool;
}

let no_plugin =
  {
    on_assign = (fun _ -> ());
    on_unassign = (fun _ -> ());
    decide = (fun () -> None);
    is_complete = (fun () -> false);
  }

let dummy_clause =
  { lits = [||]; activity = 0.; learnt = false; deleted = true; lbd = 0 }

type t = {
  cfg : Types.config;
  stats : Types.stats;
  rng : Rng.t;
  mutable nvars : int;
  mutable ok : bool;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* indexed by literal *)
  mutable assign : int array;           (* var -> -1 / 0 / 1 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;
  mutable activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable heap : Heap.t;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable seen : bool array;
  mutable jw_weight : float array;      (* static Jeroslow-Wang literal weights *)
  mutable jw_ready : bool;
  mutable plugin : plugin;
  mutable model : bool array;
  mutable partial : int array option;
  mutable max_learnts : int;
  mutable assumptions : int array;
  mutable proof : Cnf.Clause.t list; (* learned clauses, newest first *)
  (* absolute per-call thresholds, set at [solve] entry *)
  mutable conflict_budget : int option;
  mutable decision_budget : int option;
  (* cooperative interruption: set from any domain, consumed by the
     search loop of the domain running [solve] *)
  interrupted : bool Atomic.t;
  mutable on_learn : (Cnf.Lit.t list -> int -> unit) option;
  mutable on_restart : (unit -> unit) option;
}

let config s = s.cfg
let stats s = s.stats
let set_plugin s p = s.plugin <- p
let set_learn_hook s h = s.on_learn <- h
let set_restart_hook s h = s.on_restart <- h
let interrupt s = Atomic.set s.interrupted true
let interrupt_requested s = Atomic.get s.interrupted
let nvars s = s.nvars
let decision_level s = Vec.size s.trail_lim

let value_var s v = s.assign.(v)

let value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let ensure_capacity s n =
  let old = Array.length s.assign in
  if n > old then begin
    let cap = max n (old * 2) in
    let grow_arr a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- grow_arr s.assign (-1);
    s.level <- grow_arr s.level (-1);
    s.reason <- grow_arr s.reason None;
    s.phase <- grow_arr s.phase false;
    s.activity <- grow_arr s.activity 0.;
    s.seen <- grow_arr s.seen false;
    let w = Array.init (2 * cap) (fun i ->
        if i < 2 * old then s.watches.(i)
        else Vec.create ~capacity:4 ~dummy:dummy_clause ())
    in
    s.watches <- w;
    Heap.grow s.heap cap
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  ensure_capacity s s.nvars;
  Heap.insert s.heap v;
  v

(* --- assignment / trail ------------------------------------------------ *)

let enqueue s l reason =
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.is_pos l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l;
  s.plugin.on_assign l

let new_decision_level s = Vec.push s.trail_lim (Vec.size s.trail)

(* Erase(): undo assignments above [lvl]. *)
let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      if s.cfg.phase_saving then s.phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      s.plugin.on_unassign l;
      Heap.insert s.heap v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* --- clause attachment -------------------------------------------------- *)

let attach s (c : clause) =
  Vec.push s.watches.(c.lits.(0)) c;
  Vec.push s.watches.(c.lits.(1)) c

let detach s (c : clause) =
  let remove l = Vec.filter_in_place (fun d -> d != c) s.watches.(l) in
  remove c.lits.(0);
  remove c.lits.(1)

let locked s (c : clause) =
  Array.length c.lits > 0
  && (match s.reason.(Lit.var c.lits.(0)) with
      | Some r -> r == c
      | None -> false)

let delete_clause s (c : clause) =
  detach s c;
  c.deleted <- true;
  s.stats.deleted <- s.stats.deleted + 1

(* --- activities --------------------------------------------------------- *)

let var_decay = 1. /. 0.95
let cla_decay = 1. /. 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.update s.heap v

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (d : clause) -> d.activity <- d.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_activities s =
  s.var_inc <- s.var_inc *. var_decay;
  s.cla_inc <- s.cla_inc *. cla_decay

(* --- Deduce(): unit propagation with two-literal watching --------------- *)

let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.stats.propagations <- s.stats.propagations + 1;
    let np = Lit.negate p in
    let ws = s.watches.(np) in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        (* normalise: the falsified watch sits at position 1 *)
        if c.lits.(0) = np then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- np
        end;
        if value s c.lits.(0) = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let k = ref 2 and found = ref false in
          while (not !found) && !k < len do
            if value s c.lits.(!k) <> 0 then begin
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- np;
              Vec.push s.watches.(c.lits.(1)) c;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            Vec.set ws !j c;
            incr j;
            if value s c.lits.(0) = 0 then begin
              (* conflicting clause: flush remaining watchers and stop *)
              confl := Some c;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
            else enqueue s c.lits.(0) (Some c)
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* --- Diagnose(): 1-UIP conflict analysis -------------------------------- *)

(* Returns the learned literals (UIP first) and the backjump level.  The
   learned clause is an implicate of the formula (clause recording); the
   asserted UIP literal is the conflict-induced necessary assignment. *)
let analyze s confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (Vec.size s.trail - 1) in
  let continue = ref true in
  while !continue do
    (match !confl with
     | None -> assert false
     | Some c ->
       if c.learnt then bump_clause s c;
       Array.iter
         (fun q ->
            let v = Lit.var q in
            if q <> !p && (not s.seen.(v)) && s.level.(v) > 0 then begin
              s.seen.(v) <- true;
              to_clear := v :: !to_clear;
              bump_var s v;
              if s.level.(v) >= decision_level s then incr path
              else learnt := q :: !learnt
            end)
         c.lits);
    (* walk back to the next marked literal on the trail *)
    while not s.seen.(Lit.var (Vec.get s.trail !idx)) do
      decr idx
    done;
    let q = Vec.get s.trail !idx in
    decr idx;
    s.seen.(Lit.var q) <- false;
    decr path;
    if !path = 0 then begin
      p := q;
      continue := false
    end
    else begin
      p := q;
      confl := s.reason.(Lit.var q)
    end
  done;
  let uip = Lit.negate !p in
  (* conflict-clause minimization: drop literals implied by the rest *)
  let kept =
    if not s.cfg.minimize_learned then !learnt
    else begin
      (* [seen] currently true exactly for the vars in [learnt] *)
      List.iter (fun q -> s.seen.(Lit.var q) <- true) !learnt;
      let redundant q =
        match s.reason.(Lit.var q) with
        | None -> false
        | Some c ->
          Array.for_all
            (fun l ->
               Lit.var l = Lit.var q
               || s.level.(Lit.var l) = 0
               || s.seen.(Lit.var l))
            c.lits
      in
      let kept = List.filter (fun q -> not (redundant q)) !learnt in
      List.iter (fun q -> s.seen.(Lit.var q) <- false) !learnt;
      kept
    end
  in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (* backjump level = highest level among the non-UIP literals *)
  let bj = List.fold_left (fun acc q -> max acc (s.level.(Lit.var q))) 0 kept in
  (* order: UIP first, then a literal of the backjump level (watch sanity) *)
  let at_bj, rest = List.partition (fun q -> s.level.(Lit.var q) = bj) kept in
  (uip :: (at_bj @ rest), bj)

(* Failed-assumption analysis: which assumptions force [p] false. *)
let analyze_final s p =
  let core = ref [ p ] in
  let v0 = Lit.var p in
  s.seen.(v0) <- true;
  for i = Vec.size s.trail - 1 downto 0 do
    let q = Vec.get s.trail i in
    let v = Lit.var q in
    if s.seen.(v) then begin
      (match s.reason.(v) with
       | None -> if s.level.(v) > 0 && v <> v0 then core := q :: !core
       | Some c ->
         Array.iter
           (fun l ->
              if Lit.var l <> v && s.level.(Lit.var l) > 0 then
                s.seen.(Lit.var l) <- true)
           c.lits);
      s.seen.(v) <- false
    end
  done;
  s.seen.(v0) <- false;
  !core

(* --- clause recording ---------------------------------------------------- *)

let fire_learn s lits lbd =
  match s.on_learn with None -> () | Some h -> h lits lbd

let record_learnt s lits =
  s.stats.learned <- s.stats.learned + 1;
  s.stats.learned_literals <- s.stats.learned_literals + List.length lits;
  if s.cfg.proof_logging then s.proof <- Cnf.Clause.of_list lits :: s.proof;
  match lits with
  | [] -> s.ok <- false; None
  | [ l ] ->
    fire_learn s lits 1;
    enqueue s l None;
    None
  | l :: rest ->
    (* literal-block distance: distinct levels of the tail literals,
       plus the level the UIP is about to be asserted at *)
    let lbd =
      1
      + List.length
          (List.sort_uniq Int.compare
             (List.map (fun q -> s.level.(Lit.var q)) rest))
    in
    fire_learn s lits lbd;
    let c =
      { lits = Array.of_list lits; activity = 0.; learnt = true;
        deleted = false; lbd }
    in
    attach s c;
    Vec.push s.learnts c;
    bump_clause s c;
    enqueue s l (Some c);
    Some c

(* --- clause deletion policies ------------------------------------------- *)

let reduce_activity_half s =
  let arr =
    Vec.to_list s.learnts
    |> List.filter (fun c -> not c.deleted)
    |> List.sort (fun (a : clause) (b : clause) ->
           Float.compare a.activity b.activity)
    |> Array.of_list
  in
  let target = Array.length arr / 2 in
  let removed = ref 0 in
  Array.iter
    (fun c ->
       if !removed < target && Array.length c.lits > 2 && not (locked s c) then begin
         delete_clause s c;
         incr removed
       end)
    arr;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts

let reduce_by_predicate s pred =
  Vec.iter
    (fun c -> if (not c.deleted) && pred c && not (locked s c) then delete_clause s c)
    s.learnts;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts

let unassigned_count s (c : clause) =
  Array.fold_left (fun acc l -> if value s l < 0 then acc + 1 else acc) 0 c.lits

let maybe_reduce s =
  match s.cfg.deletion with
  | Types.No_deletion -> ()
  | Types.Activity_halving ->
    if Vec.size s.learnts > s.max_learnts then begin
      reduce_activity_half s;
      s.max_learnts <- s.max_learnts * 12 / 10
    end
  | Types.Size_bounded bound ->
    if s.stats.conflicts mod 1000 = 0 then
      reduce_by_predicate s (fun c -> Array.length c.lits > bound)
  | Types.Relevance (bound, r) ->
    if s.stats.conflicts mod 1000 = 0 then
      reduce_by_predicate s (fun c ->
          Array.length c.lits > bound && unassigned_count s c > r)
  | Types.Lbd_bounded bound ->
    if s.stats.conflicts mod 1000 = 0 then
      reduce_by_predicate s (fun c -> c.lbd > bound && Array.length c.lits > 2)

(* --- Decide(): branching heuristics -------------------------------------- *)

let pick_phase s v = if s.phase.(v) then Lit.pos v else Lit.neg_of_var v

let decide_vsids s =
  let rec go () =
    if Heap.is_empty s.heap then None
    else
      let v = Heap.pop_max s.heap in
      if s.assign.(v) < 0 then Some (pick_phase s v) else go ()
  in
  go ()

let decide_fixed s =
  let rec go v =
    if v >= s.nvars then None
    else if s.assign.(v) < 0 then Some (pick_phase s v)
    else go (v + 1)
  in
  go 0

let decide_random s =
  let free = ref [] and n = ref 0 in
  for v = s.nvars - 1 downto 0 do
    if s.assign.(v) < 0 then begin
      free := v :: !free;
      incr n
    end
  done;
  if !n = 0 then None
  else
    let v = List.nth !free (Rng.int s.rng !n) in
    Some (Lit.of_var v (Rng.bool s.rng))

(* Literal-count heuristics scan the clause database; used by the
   GRASP-flavoured configurations on small instances. *)
let clause_satisfied s (c : clause) = Array.exists (fun l -> value s l = 1) c.lits

let decide_by_counts s ~restrict_to_min =
  let best = ref (-1) and best_count = ref (-1) in
  let counts = Hashtbl.create 64 in
  let min_size = ref max_int in
  let consider c =
    if (not c.deleted) && not (clause_satisfied s c) then begin
      let free = unassigned_count s c in
      if free > 0 && free < !min_size then min_size := free
    end
  in
  if restrict_to_min then begin
    Vec.iter consider s.clauses;
    Vec.iter consider s.learnts
  end;
  let count c =
    if (not c.deleted) && not (clause_satisfied s c) then begin
      let free = unassigned_count s c in
      if free > 0 && ((not restrict_to_min) || free = !min_size) then
        Array.iter
          (fun l ->
             if value s l < 0 then begin
               let cur = Option.value ~default:0 (Hashtbl.find_opt counts l) in
               Hashtbl.replace counts l (cur + 1)
             end)
          c.lits
    end
  in
  Vec.iter count s.clauses;
  Vec.iter count s.learnts;
  Hashtbl.iter
    (fun l c ->
       if c > !best_count || (c = !best_count && l < !best) then begin
         best := l;
         best_count := c
       end)
    counts;
  if !best < 0 then decide_fixed s else Some !best

let compute_jw s =
  let w = Array.make (2 * max 1 s.nvars) 0. in
  let add c =
    if not c.deleted then begin
      let inc = 2. ** float_of_int (-Array.length c.lits) in
      Array.iter (fun l -> w.(l) <- w.(l) +. inc) c.lits
    end
  in
  Vec.iter add s.clauses;
  s.jw_weight <- w;
  s.jw_ready <- true

let decide_jw s =
  if not s.jw_ready then compute_jw s;
  let best = ref (-1) and best_w = ref neg_infinity in
  for l = 0 to (2 * s.nvars) - 1 do
    if value s l < 0 && l < Array.length s.jw_weight && s.jw_weight.(l) > !best_w
    then begin
      best := l;
      best_w := s.jw_weight.(l)
    end
  done;
  if !best < 0 then None else Some !best

let default_decide s =
  if s.cfg.random_decision_freq > 0.
     && Rng.float s.rng < s.cfg.random_decision_freq
  then
    match decide_random s with
    | Some l -> Some l
    | None -> None
  else
    match s.cfg.heuristic with
    | Types.Vsids -> decide_vsids s
    | Types.Fixed_order -> decide_fixed s
    | Types.Random_order -> decide_random s
    | Types.Dlis -> decide_by_counts s ~restrict_to_min:false
    | Types.Moms -> decide_by_counts s ~restrict_to_min:true
    | Types.Jeroslow_wang -> decide_jw s

(* --- restarts ------------------------------------------------------------- *)

(* MiniSat's integer Luby sequence: 1 1 2 1 1 2 4 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 and x = ref x in
  while !size < !x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let restart_limit s k =
  match s.cfg.restarts with
  | Types.No_restarts -> max_int
  | Types.Luby base -> base * luby k
  | Types.Geometric (first, factor) ->
    int_of_float (float_of_int first *. (factor ** float_of_int k))

(* --- top-level clause addition ------------------------------------------- *)

let add_clause s lits =
  assert (decision_level s = 0);
  let c = Cnf.Clause.of_list lits in
  if s.ok && not (Cnf.Clause.is_tautology c) then begin
    List.iter (fun l -> ignore (Lit.var l);
                while Lit.var l >= s.nvars do ignore (new_var s) done)
      (Cnf.Clause.to_list c);
    (* simplify against the level-0 assignment *)
    let lits = Cnf.Clause.to_list c in
    if not (List.exists (fun l -> value s l = 1) lits) then begin
      let lits = List.filter (fun l -> value s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l None;
        (match propagate s with Some _ -> s.ok <- false | None -> ())
      | l0 :: l1 :: _ ->
        let arr = Array.of_list lits in
        ignore l0;
        ignore l1;
        let cl =
          { lits = arr; activity = 0.; learnt = false; deleted = false;
            lbd = 0 }
        in
        attach s cl;
        Vec.push s.clauses cl;
        s.jw_ready <- false
    end
  end

(* Accept a foreign clause (e.g. learned by another solver on the same
   formula) at decision level 0.  Mirrors [add_clause]'s simplification
   and invariants, but records the clause as a learnt one carrying its
   producer's LBD so the deletion policies treat it uniformly.  Sound
   whenever the clause is an implicate of the formula the solver holds. *)
let import_clause ?lbd s lits =
  assert (decision_level s = 0);
  let c = Cnf.Clause.of_list lits in
  if s.ok && not (Cnf.Clause.is_tautology c) then begin
    List.iter
      (fun l -> while Lit.var l >= s.nvars do ignore (new_var s) done)
      (Cnf.Clause.to_list c);
    let lits = Cnf.Clause.to_list c in
    if not (List.exists (fun l -> value s l = 1) lits) then begin
      let lits = List.filter (fun l -> value s l <> 0) lits in
      s.stats.imported <- s.stats.imported + 1;
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l None;
        (match propagate s with Some _ -> s.ok <- false | None -> ())
      | _ ->
        let lbd = match lbd with Some b -> b | None -> List.length lits in
        let cl =
          { lits = Array.of_list lits; activity = 0.; learnt = true;
            deleted = false; lbd }
        in
        attach s cl;
        Vec.push s.learnts cl
    end
  end

let create ?(config = Types.default) formula =
  let n = Cnf.Formula.nvars formula in
  let cap = max n 1 in
  (* the heap's score must read [s.activity] (which [ensure_capacity]
     replaces wholesale), so it goes through a knot tied after the record
     is built *)
  let score = ref (fun (_ : int) -> 0.) in
  let s =
    {
      cfg = config;
      stats = Types.mk_stats ();
      rng = Rng.create config.Types.random_seed;
      nvars = 0;
      ok = true;
      clauses = Vec.create ~dummy:dummy_clause ();
      learnts = Vec.create ~dummy:dummy_clause ();
      watches = Array.init (2 * cap) (fun _ -> Vec.create ~capacity:4 ~dummy:dummy_clause ());
      assign = Array.make cap (-1);
      level = Array.make cap (-1);
      reason = Array.make cap None;
      phase = Array.make cap false;
      activity = Array.make cap 0.;
      var_inc = 1.;
      cla_inc = 1.;
      heap = Heap.create ~score:(fun v -> !score v) cap;
      trail = Vec.create ~dummy:0 ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      seen = Array.make cap false;
      jw_weight = [||];
      jw_ready = false;
      plugin = no_plugin;
      model = [||];
      partial = None;
      max_learnts = 100;
      assumptions = [||];
      proof = [];
      conflict_budget = None;
      decision_budget = None;
      interrupted = Atomic.make false;
      on_learn = None;
      on_restart = None;
    }
  in
  score := (fun v -> s.activity.(v));
  for _ = 1 to n do
    ignore (new_var s)
  done;
  Cnf.Formula.iter_clauses formula (fun c -> add_clause s (Cnf.Clause.to_list c));
  s.max_learnts <- max 100 (Vec.size s.clauses / 3);
  s

(* --- search --------------------------------------------------------------- *)

type step = Continue | Done of Types.outcome

let extract_model s =
  let m = Array.make s.nvars false in
  for v = 0 to s.nvars - 1 do
    m.(v) <- (if s.assign.(v) >= 0 then s.assign.(v) = 1 else s.phase.(v))
  done;
  s.model <- m;
  s.partial <- Some (Array.sub s.assign 0 s.nvars);
  Types.Sat m

let handle_conflict s confl =
  s.stats.conflicts <- s.stats.conflicts + 1;
  if decision_level s = 0 then begin
    s.ok <- false;
    Done Types.Unsat
  end
  else begin
    let lits, bj = analyze s confl in
    let target =
      (* chronological mode still sends unit learned clauses to the root:
         a reasonless literal inside a level would corrupt later conflict
         analysis *)
      match lits with
      | [ _ ] -> bj
      | _ ->
        if s.cfg.chronological then max bj (decision_level s - 1) else bj
    in
    if target < decision_level s - 1 then begin
      s.stats.nonchrono_backjumps <- s.stats.nonchrono_backjumps + 1;
      s.stats.skipped_levels <-
        s.stats.skipped_levels + (decision_level s - 1 - target)
    end;
    cancel_until s target;
    ignore (record_learnt s lits);
    decay_activities s;
    if not s.ok then Done Types.Unsat else Continue
  end

let budget_exceeded s =
  let hit limit counter =
    match limit with Some m when counter >= m -> true | Some _ | None -> false
  in
  hit s.cfg.max_conflicts s.stats.conflicts
  || hit s.cfg.max_decisions s.stats.decisions
  || hit s.conflict_budget s.stats.conflicts
  || hit s.decision_budget s.stats.decisions

let decide_step s =
  (* assumption literals occupy the lowest decision levels *)
  if decision_level s < Array.length s.assumptions then begin
    let p = s.assumptions.(decision_level s) in
    match value s p with
    | 1 ->
      new_decision_level s;
      Continue
    | 0 -> Done (Types.Unsat_assuming (analyze_final s p))
    | _ ->
      new_decision_level s;
      enqueue s p None;
      Continue
  end
  else if s.plugin.is_complete () then Done (extract_model s)
  else begin
    let next =
      match s.plugin.decide () with
      | Some l -> Some l
      | None -> default_decide s
    in
    match next with
    | None -> Done (extract_model s)
    | Some l ->
      assert (value s l < 0);
      s.stats.decisions <- s.stats.decisions + 1;
      new_decision_level s;
      s.stats.max_level <- max s.stats.max_level (decision_level s);
      enqueue s l None;
      Continue
  end

let solve ?(assumptions = []) ?max_conflicts ?max_decisions s =
  (* per-call budgets are relative to this call's starting counters, so a
     budgeted [Unknown] never poisons later queries on the same solver *)
  s.conflict_budget <-
    Option.map (fun m -> s.stats.conflicts + m) max_conflicts;
  s.decision_budget <-
    Option.map (fun m -> s.stats.decisions + m) max_decisions;
  (* level-0 boundary hook (clause import, etc.) before the search starts *)
  (match s.on_restart with Some h when s.ok -> h () | _ -> ());
  if not s.ok then Types.Unsat
  else begin
    (* assumptions may mention variables no clause ever did *)
    List.iter
      (fun l ->
         while Lit.var l >= s.nvars do
           ignore (new_var s)
         done)
      assumptions;
    s.assumptions <- Array.of_list assumptions;
    s.partial <- None;
    let restart_num = ref 0 in
    let conflicts_here = ref 0 in
    let limit = ref (restart_limit s 0) in
    let result = ref None in
    while !result = None do
      if Atomic.get s.interrupted then begin
        (* consume the request: the next [solve] runs normally *)
        Atomic.set s.interrupted false;
        s.stats.interrupts <- s.stats.interrupts + 1;
        result := Some (Types.Unknown "interrupted")
      end
      else
        match propagate s with
        | Some confl -> begin
            incr conflicts_here;
            match handle_conflict s confl with
            | Done r -> result := Some r
            | Continue ->
              maybe_reduce s;
              if budget_exceeded s then result := Some (Types.Unknown "budget")
              else if !conflicts_here >= !limit then begin
                (* randomized restart (Sec. 6) *)
                incr restart_num;
                s.stats.restarts_done <- s.stats.restarts_done + 1;
                conflicts_here := 0;
                limit := restart_limit s !restart_num;
                cancel_until s 0;
                (match s.on_restart with
                 | Some h ->
                   h ();
                   if not s.ok then result := Some Types.Unsat
                 | None -> ())
              end
          end
        | None -> begin
            if budget_exceeded s then result := Some (Types.Unknown "budget")
            else
              match decide_step s with
              | Done r -> result := Some r
              | Continue -> ()
          end
    done;
    cancel_until s 0;
    s.assumptions <- [||];
    Option.get !result
  end

(* External retention policy, e.g. between incremental queries.  Locked
   clauses (currently a reason) are never removed. *)
let prune_learnts s ~keep =
  reduce_by_predicate s (fun c ->
      not (keep ~lbd:c.lbd ~size:(Array.length c.lits) ~lits:c.lits))

let learned_clauses s =
  Vec.to_list s.learnts
  |> List.filter (fun c -> not c.deleted)
  |> List.map (fun c -> Cnf.Clause.of_list (Array.to_list c.lits))

let last_partial_assignment s = s.partial
let proof s = List.rev s.proof
