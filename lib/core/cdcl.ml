(* Conflict-driven clause learning with two-literal watching.  The
   imperative core follows the MiniSat lineage of the GRASP architecture
   described in the paper; comments mark the Decide / Deduce / Diagnose /
   Erase roles of Figure 2. *)

module Lit = Cnf.Lit

type clause = {
  mutable lits : int array; (* lits.(0), lits.(1) are the watched literals *)
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
  mutable lbd : int; (* distinct decision levels at learning time *)
  mutable cid : int;
      (* index into the solver's clause table, assigned at [attach];
         watch lists reference clauses by this integer so watcher stores
         never pay the GC write barrier.  [-1] before attachment. *)
}

type plugin = {
  on_assign : Cnf.Lit.t -> unit;
  on_unassign : Cnf.Lit.t -> unit;
  decide : unit -> Cnf.Lit.t option;
  is_complete : unit -> bool;
}

let no_plugin =
  {
    on_assign = (fun _ -> ());
    on_unassign = (fun _ -> ());
    decide = (fun () -> None);
    is_complete = (fun () -> false);
  }

let dummy_clause =
  { lits = [||]; activity = 0.; learnt = false; deleted = true; lbd = 0;
    cid = 0 }

type inprocess_stats = {
  mutable inp_rounds : int;
  mutable inp_subsumed : int;
  mutable inp_vivified : int;
  mutable inp_vivified_lits : int;
}

let mk_inprocess_stats () =
  { inp_rounds = 0; inp_subsumed = 0; inp_vivified = 0; inp_vivified_lits = 0 }

type t = {
  cfg : Types.config;
  stats : Types.stats;
  rng : Rng.t;
  mutable nvars : int;
  mutable ok : bool;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : Watcher.t array; (* indexed by literal *)
  (* clause table: maps the integer clause references stored in watch
     lists back to clause records; slot 0 is permanently [dummy_clause],
     and deleted clauses have their slot re-pointed at it so the records
     can be collected while tombstone entries still dereference safely *)
  mutable ctab : clause array;
  mutable next_cid : int;
  (* tombstone watcher entries left behind by lazy clause deletion;
     compacted away once they exceed a fraction of all live entries *)
  mutable dead_watchers : int;
  mutable assign : int array;           (* var -> -1 / 0 / 1 *)
  mutable level : int array;
  mutable reason : clause array;
      (* [dummy_clause] marks "no reason" (decision / level 0): an
         implication's antecedent is stored without boxing an option *)
  mutable phase : bool array;
  mutable activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable heap : Heap.t;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable seen : bool array;
  mutable jw_weight : float array;      (* static Jeroslow-Wang literal weights *)
  mutable jw_ready : bool;
  mutable plugin : plugin;
  mutable model : bool array;
  mutable partial : int array option;
  mutable max_learnts : int;
  mutable assumptions : int array;
  mutable proof : Types.proof_step list; (* DRAT steps, newest first *)
  (* absolute per-call thresholds, set at [solve] entry *)
  mutable conflict_budget : int option;
  mutable decision_budget : int option;
  (* cooperative interruption: set from any domain, consumed by the
     search loop of the domain running [solve] *)
  interrupted : bool Atomic.t;
  mutable on_learn : (Cnf.Lit.t list -> int -> unit) option;
  mutable on_restart : (unit -> unit) option;
  (* observability: both default to [None]; every emission site guards
     on the option so a solver with nothing attached pays one immediate
     comparison per site, off the propagation inner loop *)
  mutable tracer : Trace.sink option;
  mutable instruments : Metrics.solver_instruments option;
  (* full registry for the non-histogram instrumentation (inprocessing
     counters, "simplify" phase spans); independent of [instruments] so
     portfolio workers can attach their private registries *)
  mutable metrics : Metrics.t option;
  mutable solve_calls : int;
  (* conflict count at the last inprocessing pass *)
  mutable last_inprocess : int;
  inp : inprocess_stats;
}

let config s = s.cfg
let stats s = s.stats
let set_plugin s p = s.plugin <- p
let set_learn_hook s h = s.on_learn <- h
let set_restart_hook s h = s.on_restart <- h
let set_tracer s tr = s.tracer <- tr
let set_instruments s ins = s.instruments <- ins
let set_metrics s m = s.metrics <- m
let inprocess_stats s = s.inp
let interrupt s = Atomic.set s.interrupted true
let interrupt_requested s = Atomic.get s.interrupted
let clear_interrupt s = Atomic.set s.interrupted false
let nvars s = s.nvars
let decision_level s = Vec.size s.trail_lim

let value_var s v = s.assign.(v)

let value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let ensure_capacity s n =
  let old = Array.length s.assign in
  if n > old then begin
    let cap = max n (old * 2) in
    let grow_arr a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- grow_arr s.assign (-1);
    s.level <- grow_arr s.level (-1);
    s.reason <- grow_arr s.reason dummy_clause;
    s.phase <- grow_arr s.phase false;
    s.activity <- grow_arr s.activity 0.;
    s.seen <- grow_arr s.seen false;
    let w = Array.init (2 * cap) (fun i ->
        if i < 2 * old then s.watches.(i)
        else Watcher.create ~capacity:4 ())
    in
    s.watches <- w;
    Heap.grow s.heap cap;
    Heap.set_scores s.heap s.activity
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  ensure_capacity s s.nvars;
  Heap.insert s.heap v;
  v

(* --- assignment / trail ------------------------------------------------ *)

let enqueue s l reason =
  (* [l]'s variable is always allocated (< nvars), so the bounds checks
     can go: this runs once per implication, inside propagation *)
  let v = l lsr 1 in
  Array.unsafe_set s.assign v (1 - (l land 1));
  Array.unsafe_set s.level v (decision_level s);
  Array.unsafe_set s.reason v reason;
  Vec.push s.trail l;
  s.plugin.on_assign l

let new_decision_level s = Vec.push s.trail_lim (Vec.size s.trail)

(* Erase(): undo assignments above [lvl]. *)
let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.unsafe_get s.trail i in
      let v = Lit.var l in
      if s.cfg.phase_saving then s.phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      (* [s.reason.(v)] is left stale: every reader but [locked] only
         consults reasons of assigned variables, and [locked] checks the
         assignment itself — clearing here would cost a pointer store
         (write barrier) per undone assignment *)
      s.plugin.on_unassign l;
      Heap.insert s.heap v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* --- clause attachment -------------------------------------------------- *)

let alloc_cid s (c : clause) =
  if c.cid < 0 then begin
    if s.next_cid = Array.length s.ctab then begin
      let t = Array.make (2 * s.next_cid) dummy_clause in
      Array.blit s.ctab 0 t 0 s.next_cid;
      s.ctab <- t
    end;
    s.ctab.(s.next_cid) <- c;
    c.cid <- s.next_cid;
    s.next_cid <- s.next_cid + 1
  end

(* Each watcher entry carries the other watched literal as its blocking
   literal: when the blocker is already true the clause is satisfied and
   propagation skips the clause dereference entirely. *)
let attach s (c : clause) =
  alloc_cid s c;
  Watcher.push s.watches.(c.lits.(0)) c.lits.(1) c.cid;
  Watcher.push s.watches.(c.lits.(1)) c.lits.(0) c.cid

let locked s (c : clause) =
  Array.length c.lits > 0
  && (let v = Lit.var c.lits.(0) in
      s.reason.(v) == c && s.assign.(v) >= 0)

(* O(1) lazy deletion: the clause's two watcher entries become tombstones
   that propagation drops on traversal and [maybe_compact_watches] sweeps
   in bulk.  [delete_clause_silent] skips the proof step — for callers
   that detach a clause only to re-add it (vivification) and emit their
   own add/delete ordering. *)
let delete_clause_silent s (c : clause) =
  c.deleted <- true;
  (* re-point the table slot at the (deleted) dummy: tombstone watcher
     entries still dereference safely, and the record becomes garbage as
     soon as the clause vectors are filtered *)
  s.ctab.(c.cid) <- dummy_clause;
  s.dead_watchers <- s.dead_watchers + 2;
  s.stats.deleted <- s.stats.deleted + 1

let delete_clause s (c : clause) =
  if s.cfg.proof_logging && c.learnt then
    s.proof <-
      Types.Delete (Cnf.Clause.of_list (Array.to_list c.lits)) :: s.proof;
  delete_clause_silent s c

(* Compact every watch list once tombstones exceed a quarter of the live
   entries, so clause-database reduction cannot leave permanently
   traversed garbage. *)
let maybe_compact_watches s =
  let live = 2 * (Vec.size s.clauses + Vec.size s.learnts) in
  if s.dead_watchers > 16 && s.dead_watchers * 4 > live then begin
    let ctab = s.ctab in
    let keep cref = not ctab.(cref).deleted in
    Array.iter (fun w -> Watcher.filter_in_place keep w) s.watches;
    s.dead_watchers <- 0
  end

(* --- activities --------------------------------------------------------- *)

let var_decay = 1. /. 0.95
let cla_decay = 1. /. 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.update s.heap v

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (d : clause) -> d.activity <- d.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_activities s =
  s.var_inc <- s.var_inc *. var_decay;
  s.cla_inc <- s.cla_inc *. cla_decay

(* --- Deduce(): unit propagation with two-literal watching --------------- *)

(* First non-false literal position at index >= k, or -1.  Top-level so
   the non-flambda compiler emits plain calls instead of allocating a
   closure per clause visit. *)
let rec find_nonfalse assign lits len k =
  if k >= len then -1
  else
    let l = Array.unsafe_get lits k in
    if Array.unsafe_get assign (l lsr 1) <> l land 1 then k
    else find_nonfalse assign lits len (k + 1)

(* The hot loop.  Indices are provably in bounds (watcher traversal is
   bounded by the list size captured before it, literal/variable indices
   by the attach invariants), so accesses go through the unsafe raw
   arrays; [s.assign] is read through one local binding; the stats
   increment is batched per call (trail-pointer delta).  A literal [l] is
   true iff [assign.(l/2) = 1 - (l land 1)] and false iff
   [assign.(l/2) = l land 1] (unassigned is -1, which matches neither). *)
let propagate s =
  let confl = ref None in
  let trail = s.trail in
  let assign = s.assign in
  let watches = s.watches in
  let qhead0 = s.qhead in
  (* loop invariants of the inlined [enqueue]: propagation never opens a
     decision level, swaps the plugin, or reallocates the solver arrays *)
  let level = s.level in
  let reason = s.reason in
  let ctab = s.ctab in
  let dl = decision_level s in
  let on_assign = s.plugin.on_assign in
  let has_plugin = s.plugin != no_plugin in
  while !confl == None && s.qhead < Vec.size trail do
    let p = Vec.unsafe_get trail s.qhead in
    s.qhead <- s.qhead + 1;
    let np = p lxor 1 in
    let ws = Array.unsafe_get watches np in
    let n = Watcher.size ws in
    (* moved watches are pushed onto other lists, never this one (their
       new watch is non-false while [np] is false), so the raw arrays
       cannot be reallocated during the traversal *)
    let bls = Watcher.raw_blockers ws in
    let crs = Watcher.raw_crefs ws in
    let i = ref 0 and j = ref 0 in
    (* both watcher payloads are immediates, so the compaction stores
       below never invoke the GC write barrier; they are still skipped
       while no watcher has been dropped ([j] trails [i] only then) *)
    while !i < n do
      let b = Array.unsafe_get bls !i in
      if Array.unsafe_get assign (b lsr 1) = 1 - (b land 1) then begin
        (* blocker already true: keep the watcher, no clause dereference *)
        if !j < !i then begin
          Array.unsafe_set bls !j b;
          Array.unsafe_set crs !j (Array.unsafe_get crs !i)
        end;
        incr i;
        incr j
      end
      else begin
        let cid = Array.unsafe_get crs !i in
        incr i;
        let c = Array.unsafe_get ctab cid in
        if c.deleted then s.dead_watchers <- s.dead_watchers - 1
        else begin
          let lits = c.lits in
          (* normalise: the falsified watch sits at position 1 *)
          let first =
            let l0 = Array.unsafe_get lits 0 in
            if l0 = np then begin
              let o = Array.unsafe_get lits 1 in
              Array.unsafe_set lits 0 o;
              Array.unsafe_set lits 1 np;
              o
            end
            else l0
          in
          if Array.unsafe_get assign (first lsr 1) = 1 - (first land 1)
          then begin
            (* satisfied by the other watch: it becomes the blocker *)
            Array.unsafe_set bls !j first;
            Array.unsafe_set crs !j cid;
            incr j
          end
          else begin
            let len = Array.length lits in
            let k = find_nonfalse assign lits len 2 in
            if k >= 0 then begin
              (* non-false literal found: move the watch there *)
              let l = Array.unsafe_get lits k in
              Array.unsafe_set lits 1 l;
              Array.unsafe_set lits k np;
              Watcher.push (Array.unsafe_get watches l) first cid
            end
            else begin
              Array.unsafe_set bls !j first;
              Array.unsafe_set crs !j cid;
              incr j;
              if Array.unsafe_get assign (first lsr 1) = first land 1
              then begin
                (* conflicting clause: flush remaining watchers and stop *)
                confl := Some c;
                if !j = !i then begin
                  (* nothing dropped: the tail is already in place *)
                  i := n;
                  j := n
                end
                else
                  while !i < n do
                    Array.unsafe_set bls !j (Array.unsafe_get bls !i);
                    Array.unsafe_set crs !j (Array.unsafe_get crs !i);
                    incr j;
                    incr i
                  done
              end
              else begin
                (* inlined [enqueue] *)
                let v = first lsr 1 in
                Array.unsafe_set assign v (1 - (first land 1));
                Array.unsafe_set level v dl;
                Array.unsafe_set reason v c;
                Vec.push trail first;
                if has_plugin then on_assign first
              end
            end
          end
        end
      end
    done;
    if !j < n then Watcher.shrink ws !j
  done;
  let props = s.qhead - qhead0 in
  s.stats.propagations <- s.stats.propagations + props;
  (match s.tracer with
   | Some tr when props > 0 ->
     Trace.emit tr (Trace.Propagation { props; trail = Vec.size trail })
   | _ -> ());
  !confl

(* --- Diagnose(): 1-UIP conflict analysis -------------------------------- *)

(* Returns the learned literals (UIP first) and the backjump level.  The
   learned clause is an implicate of the formula (clause recording); the
   asserted UIP literal is the conflict-induced necessary assignment. *)
let analyze s confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (Vec.size s.trail - 1) in
  let continue = ref true in
  while !continue do
    let c = !confl in
    if c.learnt then bump_clause s c;
    (* explicit loop: an [Array.iter] closure over this many captured
       refs would be allocated once per resolution step *)
    let lits = c.lits in
    for k = 0 to Array.length lits - 1 do
      let q = Array.unsafe_get lits k in
      let v = Lit.var q in
      if q <> !p && (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr path
        else learnt := q :: !learnt
      end
    done;
    (* walk back to the next marked literal on the trail; the 1-UIP
       invariant keeps [idx] within the trail, so the reads are unsafe *)
    while not s.seen.(Lit.var (Vec.unsafe_get s.trail !idx)) do
      decr idx
    done;
    let q = Vec.unsafe_get s.trail !idx in
    decr idx;
    s.seen.(Lit.var q) <- false;
    decr path;
    if !path = 0 then begin
      p := q;
      continue := false
    end
    else begin
      p := q;
      confl := s.reason.(Lit.var q)
    end
  done;
  let uip = Lit.negate !p in
  (* conflict-clause minimization: drop literals implied by the rest *)
  let kept =
    if not s.cfg.minimize_learned then !learnt
    else begin
      (* [seen] currently true exactly for the vars in [learnt] *)
      List.iter (fun q -> s.seen.(Lit.var q) <- true) !learnt;
      let redundant q =
        let c = s.reason.(Lit.var q) in
        (* decisions ([dummy_clause]) are never redundant *)
        c != dummy_clause
        && Array.for_all
             (fun l ->
                Lit.var l = Lit.var q
                || s.level.(Lit.var l) = 0
                || s.seen.(Lit.var l))
             c.lits
      in
      let kept = List.filter (fun q -> not (redundant q)) !learnt in
      List.iter (fun q -> s.seen.(Lit.var q) <- false) !learnt;
      kept
    end
  in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (* backjump level = highest level among the non-UIP literals *)
  let bj = List.fold_left (fun acc q -> max acc (s.level.(Lit.var q))) 0 kept in
  (* order: UIP first, then a literal of the backjump level (watch sanity) *)
  let at_bj, rest = List.partition (fun q -> s.level.(Lit.var q) = bj) kept in
  (uip :: (at_bj @ rest), bj)

(* Failed-assumption analysis: which assumptions force [p] false. *)
let analyze_final s p =
  let core = ref [ p ] in
  let v0 = Lit.var p in
  s.seen.(v0) <- true;
  for i = Vec.size s.trail - 1 downto 0 do
    let q = Vec.get s.trail i in
    let v = Lit.var q in
    if s.seen.(v) then begin
      (let c = s.reason.(v) in
       if c == dummy_clause then begin
         if s.level.(v) > 0 && v <> v0 then core := q :: !core
       end
       else
         Array.iter
           (fun l ->
              if Lit.var l <> v && s.level.(Lit.var l) > 0 then
                s.seen.(Lit.var l) <- true)
           c.lits);
      s.seen.(v) <- false
    end
  done;
  s.seen.(v0) <- false;
  !core

(* --- clause recording ---------------------------------------------------- *)

let fire_learn s lits lbd =
  (match s.on_learn with None -> () | Some h -> h lits lbd);
  (match s.instruments with
   | Some ins -> Metrics.observe_int ins.Metrics.lbd lbd
   | None -> ());
  match s.tracer with
  | Some tr -> Trace.emit tr (Trace.Learn { lbd; size = List.length lits })
  | None -> ()

let record_learnt s lits =
  s.stats.learned <- s.stats.learned + 1;
  s.stats.learned_literals <- s.stats.learned_literals + List.length lits;
  if s.cfg.proof_logging then
    s.proof <- Types.Add (Cnf.Clause.of_list lits) :: s.proof;
  match lits with
  | [] -> s.ok <- false; None
  | [ l ] ->
    fire_learn s lits 1;
    enqueue s l dummy_clause;
    None
  | l :: rest ->
    (* literal-block distance: distinct levels of the tail literals,
       plus the level the UIP is about to be asserted at *)
    let lbd =
      1
      + List.length
          (List.sort_uniq Int.compare
             (List.map (fun q -> s.level.(Lit.var q)) rest))
    in
    fire_learn s lits lbd;
    let c =
      { lits = Array.of_list lits; activity = 0.; learnt = true;
        deleted = false; lbd; cid = -1 }
    in
    attach s c;
    Vec.push s.learnts c;
    bump_clause s c;
    enqueue s l c;
    Some c

(* --- clause deletion policies ------------------------------------------- *)

let live_learnts s =
  let n = ref 0 in
  Vec.iter (fun (c : clause) -> if not c.deleted then incr n) s.learnts;
  !n

let trace_reduce s before =
  match s.tracer with
  | Some tr ->
    let after = live_learnts s in
    if after <> before then
      Trace.emit tr (Trace.Reduce_db { before; after })
  | None -> ()

let reduce_activity_half s =
  let before = live_learnts s in
  let arr =
    Vec.to_list s.learnts
    |> List.filter (fun c -> not c.deleted)
    |> List.sort (fun (a : clause) (b : clause) ->
           Float.compare a.activity b.activity)
    |> Array.of_list
  in
  let target = Array.length arr / 2 in
  let removed = ref 0 in
  Array.iter
    (fun c ->
       if !removed < target && Array.length c.lits > 2 && not (locked s c) then begin
         delete_clause s c;
         incr removed
       end)
    arr;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
  maybe_compact_watches s;
  trace_reduce s before

let reduce_by_predicate s pred =
  let before = live_learnts s in
  Vec.iter
    (fun c -> if (not c.deleted) && pred c && not (locked s c) then delete_clause s c)
    s.learnts;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
  maybe_compact_watches s;
  trace_reduce s before

let unassigned_count s (c : clause) =
  Array.fold_left (fun acc l -> if value s l < 0 then acc + 1 else acc) 0 c.lits

let maybe_reduce s =
  match s.cfg.deletion with
  | Types.No_deletion -> ()
  | Types.Activity_halving ->
    if Vec.size s.learnts > s.max_learnts then begin
      reduce_activity_half s;
      s.max_learnts <- s.max_learnts * 12 / 10
    end
  | Types.Size_bounded bound ->
    if s.stats.conflicts mod 1000 = 0 then
      reduce_by_predicate s (fun c -> Array.length c.lits > bound)
  | Types.Relevance (bound, r) ->
    if s.stats.conflicts mod 1000 = 0 then
      reduce_by_predicate s (fun c ->
          Array.length c.lits > bound && unassigned_count s c > r)
  | Types.Lbd_bounded bound ->
    if s.stats.conflicts mod 1000 = 0 then
      reduce_by_predicate s (fun c -> c.lbd > bound && Array.length c.lits > 2)

(* --- Decide(): branching heuristics -------------------------------------- *)

let pick_phase s v = if s.phase.(v) then Lit.pos v else Lit.neg_of_var v

let decide_vsids s =
  let rec go () =
    if Heap.is_empty s.heap then None
    else
      let v = Heap.pop_max s.heap in
      if s.assign.(v) < 0 then Some (pick_phase s v) else go ()
  in
  go ()

let decide_fixed s =
  let rec go v =
    if v >= s.nvars then None
    else if s.assign.(v) < 0 then Some (pick_phase s v)
    else go (v + 1)
  in
  go 0

let decide_random s =
  let free = ref [] and n = ref 0 in
  for v = s.nvars - 1 downto 0 do
    if s.assign.(v) < 0 then begin
      free := v :: !free;
      incr n
    end
  done;
  if !n = 0 then None
  else
    let v = List.nth !free (Rng.int s.rng !n) in
    Some (Lit.of_var v (Rng.bool s.rng))

(* Literal-count heuristics scan the clause database; used by the
   GRASP-flavoured configurations on small instances. *)
let clause_satisfied s (c : clause) = Array.exists (fun l -> value s l = 1) c.lits

let decide_by_counts s ~restrict_to_min =
  let best = ref (-1) and best_count = ref (-1) in
  let counts = Hashtbl.create 64 in
  let min_size = ref max_int in
  let consider c =
    if (not c.deleted) && not (clause_satisfied s c) then begin
      let free = unassigned_count s c in
      if free > 0 && free < !min_size then min_size := free
    end
  in
  if restrict_to_min then begin
    Vec.iter consider s.clauses;
    Vec.iter consider s.learnts
  end;
  let count c =
    if (not c.deleted) && not (clause_satisfied s c) then begin
      let free = unassigned_count s c in
      if free > 0 && ((not restrict_to_min) || free = !min_size) then
        Array.iter
          (fun l ->
             if value s l < 0 then begin
               let cur = Option.value ~default:0 (Hashtbl.find_opt counts l) in
               Hashtbl.replace counts l (cur + 1)
             end)
          c.lits
    end
  in
  Vec.iter count s.clauses;
  Vec.iter count s.learnts;
  Hashtbl.iter
    (fun l c ->
       if c > !best_count || (c = !best_count && l < !best) then begin
         best := l;
         best_count := c
       end)
    counts;
  if !best < 0 then decide_fixed s else Some !best

let compute_jw s =
  let w = Array.make (2 * max 1 s.nvars) 0. in
  let add c =
    if not c.deleted then begin
      let inc = 2. ** float_of_int (-Array.length c.lits) in
      Array.iter (fun l -> w.(l) <- w.(l) +. inc) c.lits
    end
  in
  Vec.iter add s.clauses;
  s.jw_weight <- w;
  s.jw_ready <- true

let decide_jw s =
  if not s.jw_ready then compute_jw s;
  let best = ref (-1) and best_w = ref neg_infinity in
  for l = 0 to (2 * s.nvars) - 1 do
    if value s l < 0 && l < Array.length s.jw_weight && s.jw_weight.(l) > !best_w
    then begin
      best := l;
      best_w := s.jw_weight.(l)
    end
  done;
  if !best < 0 then None else Some !best

let default_decide s =
  if s.cfg.random_decision_freq > 0.
     && Rng.float s.rng < s.cfg.random_decision_freq
  then
    match decide_random s with
    | Some l -> Some l
    | None -> None
  else
    match s.cfg.heuristic with
    | Types.Vsids -> decide_vsids s
    | Types.Fixed_order -> decide_fixed s
    | Types.Random_order -> decide_random s
    | Types.Dlis -> decide_by_counts s ~restrict_to_min:false
    | Types.Moms -> decide_by_counts s ~restrict_to_min:true
    | Types.Jeroslow_wang -> decide_jw s

(* --- restarts ------------------------------------------------------------- *)

(* MiniSat's integer Luby sequence: 1 1 2 1 1 2 4 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 and x = ref x in
  while !size < !x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let restart_limit s k =
  match s.cfg.restarts with
  | Types.No_restarts -> max_int
  | Types.Luby base -> base * luby k
  | Types.Geometric (first, factor) ->
    int_of_float (float_of_int first *. (factor ** float_of_int k))

(* --- top-level clause addition ------------------------------------------- *)

let add_clause s lits =
  assert (decision_level s = 0);
  let c = Cnf.Clause.of_list lits in
  if s.ok && not (Cnf.Clause.is_tautology c) then begin
    List.iter (fun l -> ignore (Lit.var l);
                while Lit.var l >= s.nvars do ignore (new_var s) done)
      (Cnf.Clause.to_list c);
    (* simplify against the level-0 assignment *)
    let lits = Cnf.Clause.to_list c in
    if not (List.exists (fun l -> value s l = 1) lits) then begin
      let lits = List.filter (fun l -> value s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l dummy_clause;
        (match propagate s with Some _ -> s.ok <- false | None -> ())
      | l0 :: l1 :: _ ->
        let arr = Array.of_list lits in
        ignore l0;
        ignore l1;
        let cl =
          { lits = arr; activity = 0.; learnt = false; deleted = false;
            lbd = 0; cid = -1 }
        in
        attach s cl;
        Vec.push s.clauses cl;
        s.jw_ready <- false
    end
  end

(* Accept a foreign clause (e.g. learned by another solver on the same
   formula) at decision level 0.  Mirrors [add_clause]'s simplification
   and invariants, but records the clause as a learnt one carrying its
   producer's LBD so the deletion policies treat it uniformly.  Sound
   whenever the clause is an implicate of the formula the solver holds. *)
let import_clause ?lbd s lits =
  assert (decision_level s = 0);
  let c = Cnf.Clause.of_list lits in
  if s.ok && not (Cnf.Clause.is_tautology c) then begin
    List.iter
      (fun l -> while Lit.var l >= s.nvars do ignore (new_var s) done)
      (Cnf.Clause.to_list c);
    let lits = Cnf.Clause.to_list c in
    if not (List.exists (fun l -> value s l = 1) lits) then begin
      let lits = List.filter (fun l -> value s l <> 0) lits in
      s.stats.imported <- s.stats.imported + 1;
      (match s.tracer with
       | Some tr when lits <> [] ->
         let size = List.length lits in
         let lbd = match lbd with Some b -> min b size | None -> size in
         Trace.emit tr (Trace.Import { lbd; size })
       | _ -> ());
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l dummy_clause;
        (match propagate s with Some _ -> s.ok <- false | None -> ())
      | _ ->
        let lbd = match lbd with Some b -> b | None -> List.length lits in
        let cl =
          { lits = Array.of_list lits; activity = 0.; learnt = true;
            deleted = false; lbd; cid = -1 }
        in
        attach s cl;
        Vec.push s.learnts cl
    end
  end

(* --- inprocessing: simplify the learnt database during search ------------ *)

(* Delete learnt clauses subsumed by a smaller clause anywhere in the
   database (original or learnt).  Original clauses are never touched,
   so the proof's premise set is untouched too.  A clause [d] subsumes
   [c] iff every literal of [d] occurs in [c]; candidates are found by
   scanning the occurrence lists of all of [c]'s literals (every
   subsumer shares each of its own literals with [c]), bounded by a
   per-clause scan budget so pathological occurrence lists cannot make
   the pass quadratic. *)
let inprocess_subsume s =
  let nlits = 2 * max 1 s.nvars in
  let occ = Array.make nlits [] in
  let index (c : clause) =
    if not c.deleted then
      Array.iter (fun l -> occ.(l) <- c :: occ.(l)) c.lits
  in
  Vec.iter index s.clauses;
  Vec.iter index s.learnts;
  let seen = Array.make nlits false in
  let removed = ref 0 in
  let subsumed (c : clause) =
    Array.iter (fun l -> seen.(l) <- true) c.lits;
    let hit = ref false in
    let budget = ref 2000 in
    Array.iter
      (fun l ->
         if not !hit then
           List.iter
             (fun (d : clause) ->
                decr budget;
                if (not !hit) && !budget >= 0 && d != c && (not d.deleted)
                   && Array.length d.lits <= Array.length c.lits
                   && Array.for_all (fun m -> seen.(m)) d.lits
                then hit := true)
             occ.(l))
      c.lits;
    Array.iter (fun l -> seen.(l) <- false) c.lits;
    !hit
  in
  Vec.iter
    (fun (c : clause) ->
       if (not c.deleted) && (not (locked s c)) && Array.length c.lits > 1
          && subsumed c
       then begin
         delete_clause s c;
         incr removed
       end)
    s.learnts;
  if !removed > 0 then begin
    Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
    maybe_compact_watches s
  end;
  !removed

(* Vivification core: assert the negation of each literal in turn at a
   pseudo decision level.  A literal already true is kept and closes the
   clause (the prefix implies it); a literal already false is dropped
   (the prefix implies its negation — self-subsumption); a propagation
   conflict closes the clause at the current prefix.  Returns the kept
   literals; the caller must have detached the clause first so it cannot
   justify itself. *)
let vivify_lits s lits0 =
  new_decision_level s;
  let kept = ref [] in
  let stop = ref false in
  let i = ref 0 in
  let n = Array.length lits0 in
  while (not !stop) && !i < n do
    let l = lits0.(!i) in
    incr i;
    match value s l with
    | 1 ->
      kept := l :: !kept;
      stop := true
    | 0 -> ()
    | _ ->
      kept := l :: !kept;
      enqueue s (Lit.negate l) dummy_clause;
      (match propagate s with Some _ -> stop := true | None -> ())
  done;
  cancel_until s 0;
  List.rev !kept

(* One budgeted inprocessing pass, run at a level-0 boundary of the
   search: learnt-clause subsumption, then vivification of the lowest-LBD
   learnt clauses.  Every shortened clause is reverse-unit-propagation
   derivable from the database (the original clause is a recorded proof
   step or an input, and each drop is justified by propagation), so with
   [proof_logging] the shortened clause is appended to the proof and
   certificates stay checkable. *)
let inprocess s =
  s.inp.inp_rounds <- s.inp.inp_rounds + 1;
  (match s.tracer with
   | Some tr -> Trace.emit tr (Trace.Phase_begin "simplify")
   | None -> ());
  (match s.metrics with
   | Some m -> Metrics.phase_begin m "simplify"
   | None -> ());
  let sub0 = s.inp.inp_subsumed
  and viv0 = s.inp.inp_vivified
  and lit0 = s.inp.inp_vivified_lits in
  (* settle any pending propagation: the pass needs the level-0 closure *)
  (match propagate s with Some _ -> s.ok <- false | None -> ());
  if s.ok then begin
    s.inp.inp_subsumed <- s.inp.inp_subsumed + inprocess_subsume s;
    let cands =
      Vec.to_list s.learnts
      |> List.filter (fun (c : clause) ->
             (not c.deleted) && (not (locked s c)) && Array.length c.lits > 1)
      |> List.sort (fun (a : clause) (b : clause) ->
             match Int.compare a.lbd b.lbd with
             | 0 -> Int.compare (Array.length a.lits) (Array.length b.lits)
             | k -> k)
    in
    let budget = ref 100 in
    let props0 = s.stats.propagations in
    List.iter
      (fun (c : clause) ->
         if s.ok && !budget > 0 && (not c.deleted) && (not (locked s c))
            && s.stats.propagations - props0 < 200_000
         then begin
           decr budget;
           let lits0 = Array.copy c.lits in
           let activity = c.activity and lbd = c.lbd in
           delete_clause_silent s c;
           let lits = vivify_lits s lits0 in
           (* back at level 0: drop root-false literals, discard the
              clause entirely if it is root-satisfied *)
           if List.exists (fun l -> value s l = 1) lits then begin
             if s.cfg.proof_logging then
               s.proof <-
                 Types.Delete (Cnf.Clause.of_list (Array.to_list lits0))
                 :: s.proof
           end
           else begin
             let lits = List.filter (fun l -> value s l <> 0) lits in
             let n' = List.length lits in
             if n' < Array.length lits0 then begin
               s.inp.inp_vivified <- s.inp.inp_vivified + 1;
               s.inp.inp_vivified_lits <-
                 s.inp.inp_vivified_lits + (Array.length lits0 - n');
               if s.cfg.proof_logging then begin
                 (* the shortened clause is RUP while the original is
                    still in the proof's active set: add first, then
                    delete the original *)
                 s.proof <-
                   Types.Add (Cnf.Clause.of_list lits) :: s.proof;
                 s.proof <-
                   Types.Delete (Cnf.Clause.of_list (Array.to_list lits0))
                   :: s.proof
               end
             end;
             match lits with
             | [] -> s.ok <- false
             | [ l ] ->
               enqueue s l dummy_clause;
               (match propagate s with Some _ -> s.ok <- false | None -> ())
             | _ ->
               let cl =
                 { lits = Array.of_list lits; activity; learnt = true;
                   deleted = false; lbd = min lbd (List.length lits);
                   cid = -1 }
               in
               attach s cl;
               Vec.push s.learnts cl
           end
         end)
      cands;
    Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
    maybe_compact_watches s
  end;
  s.last_inprocess <- s.stats.conflicts;
  (match s.metrics with
   | Some m ->
     Metrics.incr (Metrics.counter m "inprocess/rounds");
     Metrics.incr
       ~by:(s.inp.inp_subsumed - sub0)
       (Metrics.counter m "inprocess/subsumed");
     Metrics.incr
       ~by:(s.inp.inp_vivified - viv0)
       (Metrics.counter m "inprocess/vivified");
     Metrics.incr
       ~by:(s.inp.inp_vivified_lits - lit0)
       (Metrics.counter m "inprocess/vivified_literals");
     Metrics.phase_end m "simplify"
   | None -> ());
  match s.tracer with
  | Some tr -> Trace.emit tr (Trace.Phase_end "simplify")
  | None -> ()

let maybe_inprocess s =
  if s.ok && s.cfg.inprocessing && decision_level s = 0
     && s.stats.conflicts - s.last_inprocess >= s.cfg.inprocess_interval
  then inprocess s

(* Seed activities and phases from structure-derived guidance.  Legal
   any time the solver is at decision level 0 between solves: seeded
   activities are scaled to the current activity ceiling so they rank
   first among untouched variables yet remain overtakable by
   conflict-driven bumps, and seeded phases simply overwrite the saved
   polarity.  Out-of-range variables are ignored (sessions may receive
   guidance computed against a larger node table). *)
let apply_guidance s (g : Types.guidance) =
  let ceiling = ref s.var_inc in
  for v = 0 to s.nvars - 1 do
    if s.activity.(v) > !ceiling then ceiling := s.activity.(v)
  done;
  let ceiling = !ceiling in
  List.iter
    (fun (v, a) ->
       if v >= 0 && v < s.nvars && a > 0. then begin
         let a = a *. ceiling in
         if a > s.activity.(v) then begin
           s.activity.(v) <- a;
           Heap.update s.heap v
         end
       end)
    g.Types.seed_activity;
  List.iter
    (fun (v, ph) -> if v >= 0 && v < s.nvars then s.phase.(v) <- ph)
    g.Types.seed_phase

let create ?(config = Types.default) formula =
  let n = Cnf.Formula.nvars formula in
  let cap = max n 1 in
  (* the heap reads scores straight out of this array; [ensure_capacity]
     repoints it with [Heap.set_scores] whenever it reallocates *)
  let activity = Array.make cap 0. in
  let s =
    {
      cfg = config;
      stats = Types.mk_stats ();
      rng = Rng.create config.Types.random_seed;
      nvars = 0;
      ok = true;
      clauses = Vec.create ~dummy:dummy_clause ();
      learnts = Vec.create ~dummy:dummy_clause ();
      watches =
        Array.init (2 * cap) (fun _ -> Watcher.create ~capacity:4 ());
      ctab = Array.make 16 dummy_clause;
      next_cid = 1;
      dead_watchers = 0;
      assign = Array.make cap (-1);
      level = Array.make cap (-1);
      reason = Array.make cap dummy_clause;
      phase = Array.make cap false;
      activity;
      var_inc = 1.;
      cla_inc = 1.;
      heap = Heap.create ~scores:activity cap;
      trail = Vec.create ~dummy:0 ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      seen = Array.make cap false;
      jw_weight = [||];
      jw_ready = false;
      plugin = no_plugin;
      model = [||];
      partial = None;
      max_learnts = 100;
      assumptions = [||];
      proof = [];
      conflict_budget = None;
      decision_budget = None;
      interrupted = Atomic.make false;
      on_learn = None;
      on_restart = None;
      tracer = None;
      instruments = None;
      metrics = None;
      solve_calls = 0;
      last_inprocess = 0;
      inp = mk_inprocess_stats ();
    }
  in
  for _ = 1 to n do
    ignore (new_var s)
  done;
  Cnf.Formula.iter_clauses formula (fun c -> add_clause s (Cnf.Clause.to_list c));
  s.max_learnts <- max 100 (Vec.size s.clauses / 3);
  Option.iter (apply_guidance s) config.Types.guide;
  s

(* --- search --------------------------------------------------------------- *)

type step = Continue | Done of Types.outcome

let extract_model s =
  let m = Array.make s.nvars false in
  for v = 0 to s.nvars - 1 do
    m.(v) <- (if s.assign.(v) >= 0 then s.assign.(v) = 1 else s.phase.(v))
  done;
  s.model <- m;
  s.partial <- Some (Array.sub s.assign 0 s.nvars);
  Types.Sat m

let handle_conflict s confl =
  s.stats.conflicts <- s.stats.conflicts + 1;
  (match s.tracer with
   | Some tr ->
     Trace.emit tr
       (Trace.Conflict { level = decision_level s; trail = Vec.size s.trail })
   | None -> ());
  (match s.instruments with
   | Some ins -> Metrics.observe_int ins.Metrics.trail (Vec.size s.trail)
   | None -> ());
  if decision_level s = 0 then begin
    s.ok <- false;
    Done Types.Unsat
  end
  else begin
    let lits, bj = analyze s confl in
    let target =
      (* chronological mode still sends unit learned clauses to the root:
         a reasonless literal inside a level would corrupt later conflict
         analysis *)
      match lits with
      | [ _ ] -> bj
      | _ ->
        if s.cfg.chronological then max bj (decision_level s - 1) else bj
    in
    if target < decision_level s - 1 then begin
      s.stats.nonchrono_backjumps <- s.stats.nonchrono_backjumps + 1;
      s.stats.skipped_levels <-
        s.stats.skipped_levels + (decision_level s - 1 - target)
    end;
    (match s.instruments with
     | Some ins ->
       Metrics.observe_int ins.Metrics.backjump (decision_level s - target)
     | None -> ());
    cancel_until s target;
    ignore (record_learnt s lits);
    decay_activities s;
    if not s.ok then Done Types.Unsat else Continue
  end

let budget_exceeded s =
  let hit limit counter =
    match limit with Some m when counter >= m -> true | Some _ | None -> false
  in
  hit s.cfg.max_conflicts s.stats.conflicts
  || hit s.cfg.max_decisions s.stats.decisions
  || hit s.conflict_budget s.stats.conflicts
  || hit s.decision_budget s.stats.decisions

let decide_step s =
  (* assumption literals occupy the lowest decision levels *)
  if decision_level s < Array.length s.assumptions then begin
    let p = s.assumptions.(decision_level s) in
    match value s p with
    | 1 ->
      new_decision_level s;
      Continue
    | 0 -> Done (Types.Unsat_assuming (analyze_final s p))
    | _ ->
      new_decision_level s;
      enqueue s p dummy_clause;
      Continue
  end
  else if s.plugin.is_complete () then Done (extract_model s)
  else begin
    let next =
      match s.plugin.decide () with
      | Some l -> Some l
      | None -> default_decide s
    in
    match next with
    | None -> Done (extract_model s)
    | Some l ->
      assert (value s l < 0);
      s.stats.decisions <- s.stats.decisions + 1;
      new_decision_level s;
      s.stats.max_level <- max s.stats.max_level (decision_level s);
      (match s.tracer with
       | Some tr ->
         Trace.emit tr (Trace.Decision { level = decision_level s; lit = l })
       | None -> ());
      enqueue s l dummy_clause;
      Continue
  end

let solve_loop s assumptions =
  (* level-0 boundary hook (clause import, etc.) before the search starts *)
  (match s.on_restart with Some h when s.ok -> h () | _ -> ());
  maybe_inprocess s;
  if not s.ok then Types.Unsat
  else begin
    (* assumptions may mention variables no clause ever did *)
    List.iter
      (fun l ->
         while Lit.var l >= s.nvars do
           ignore (new_var s)
         done)
      assumptions;
    s.assumptions <- Array.of_list assumptions;
    s.partial <- None;
    let restart_num = ref 0 in
    let conflicts_here = ref 0 in
    let limit = ref (restart_limit s 0) in
    let result = ref None in
    while !result = None do
      if Atomic.get s.interrupted then begin
        (* consume the request: the next [solve] runs normally *)
        Atomic.set s.interrupted false;
        s.stats.interrupts <- s.stats.interrupts + 1;
        result := Some (Types.Unknown "interrupted")
      end
      else
        match propagate s with
        | Some confl -> begin
            incr conflicts_here;
            match handle_conflict s confl with
            | Done r -> result := Some r
            | Continue ->
              maybe_reduce s;
              if budget_exceeded s then result := Some (Types.Unknown "budget")
              else if !conflicts_here >= !limit then begin
                (* randomized restart (Sec. 6) *)
                incr restart_num;
                s.stats.restarts_done <- s.stats.restarts_done + 1;
                (match s.tracer with
                 | Some tr ->
                   Trace.emit tr (Trace.Restart { number = !restart_num })
                 | None -> ());
                conflicts_here := 0;
                limit := restart_limit s !restart_num;
                cancel_until s 0;
                (match s.on_restart with
                 | Some h when s.ok -> h ()
                 | _ -> ());
                maybe_inprocess s;
                if not s.ok then result := Some Types.Unsat
              end
          end
        | None -> begin
            if budget_exceeded s then result := Some (Types.Unknown "budget")
            else
              match decide_step s with
              | Done r -> result := Some r
              | Continue -> ()
          end
    done;
    cancel_until s 0;
    s.assumptions <- [||];
    Option.get !result
  end

let solve ?(assumptions = []) ?max_conflicts ?max_decisions s =
  (* per-call budgets are relative to this call's starting counters, so a
     budgeted [Unknown] never poisons later queries on the same solver *)
  s.conflict_budget <-
    Option.map (fun m -> s.stats.conflicts + m) max_conflicts;
  s.decision_budget <-
    Option.map (fun m -> s.stats.decisions + m) max_decisions;
  s.solve_calls <- s.solve_calls + 1;
  let query = s.solve_calls in
  (match s.tracer with
   | Some tr -> Trace.emit tr (Trace.Solve_begin { query })
   | None -> ());
  let outcome = solve_loop s assumptions in
  (match s.tracer with
   | Some tr ->
     Trace.emit tr
       (Trace.Solve_end { query; outcome = Trace.outcome_label outcome })
   | None -> ());
  outcome

(* External retention policy, e.g. between incremental queries.  Locked
   clauses (currently a reason) are never removed. *)
let prune_learnts s ~keep =
  reduce_by_predicate s (fun c ->
      not (keep ~lbd:c.lbd ~size:(Array.length c.lits) ~lits:c.lits))

let learned_clauses s =
  Vec.to_list s.learnts
  |> List.filter (fun c -> not c.deleted)
  |> List.map (fun c -> Cnf.Clause.of_list (Array.to_list c.lits))

let last_partial_assignment s = s.partial
let proof s = List.rev s.proof

(* --- debug-only invariant checking --------------------------------------- *)

let check_watches s =
  let err = ref None in
  let fail fmt =
    Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
  in
  (* pass 1: every watcher entry is either a tombstone (deleted clause,
     counted against [dead_watchers]) or watches this very literal, with a
     blocker drawn from the clause's literals *)
  let tombstones = ref 0 in
  Array.iteri
    (fun l ws ->
       Watcher.iter
         (fun b cref ->
            if cref <= 0 || cref >= s.next_cid then
              fail "watch list %d holds out-of-range clause ref %d" l cref
            else
              let c = s.ctab.(cref) in
              if c.deleted then incr tombstones
              else begin
                if Array.length c.lits < 2 then
                  fail "watch list %d holds a clause of length %d" l
                    (Array.length c.lits);
                if Array.length c.lits >= 2
                   && c.lits.(0) <> l && c.lits.(1) <> l
                then
                  fail
                    "watch list %d holds a clause watched on %d and %d" l
                    c.lits.(0) c.lits.(1);
                if not (Array.exists (fun q -> q = b) c.lits) then
                  fail "blocker %d is not a literal of its clause" b
              end)
         ws)
    s.watches;
  if !tombstones <> s.dead_watchers then
    fail "dead-watcher count is %d but %d tombstone entries exist"
      s.dead_watchers !tombstones;
  (* pass 2: every undeleted clause is watched on exactly its first two
     literals, once in each list *)
  let check_clause (c : clause) =
    if (not c.deleted) && Array.length c.lits >= 2 then begin
      if c.cid <= 0 || c.cid >= s.next_cid || s.ctab.(c.cid) != c then
        fail "clause table slot %d does not point back at its clause" c.cid;
      let count l =
        let n = ref 0 in
        Watcher.iter (fun _ d -> if d = c.cid then incr n) s.watches.(l);
        !n
      in
      let n0 = count c.lits.(0) and n1 = count c.lits.(1) in
      if n0 <> 1 || n1 <> 1 then
        fail "clause watched %d/%d times on its first two literals" n0 n1
    end
  in
  Vec.iter check_clause s.clauses;
  Vec.iter check_clause s.learnts;
  match !err with None -> Ok () | Some m -> Error m

(* --- lookahead probing ----------------------------------------------------

   The cube generator (Sat.Cube) drives the watcher-based propagator
   directly: open a scratch decision level, enqueue one literal,
   propagate to fixpoint, measure what happened, undo.  Nothing here
   learns clauses or touches the heuristic state, so a probe is exactly
   one propagation pass — the march lookahead cost model. *)

type probe = Probe_conflict | Probe_ok of int * int

let trail_size s = Vec.size s.trail
let trail_get s i = Vec.get s.trail i
let consistent s = s.ok

let propagate_root s =
  if decision_level s <> 0 then
    invalid_arg "Cdcl.propagate_root: solver is mid-search";
  if s.ok then
    (match propagate s with Some _ -> s.ok <- false | None -> ());
  s.ok

let probe_push s l =
  if not s.ok then invalid_arg "Cdcl.probe_push: solver is inconsistent";
  let from_ = Vec.size s.trail in
  new_decision_level s;
  match value s l with
  | 1 -> Probe_ok (from_, from_)
  | 0 ->
    cancel_until s (decision_level s - 1);
    Probe_conflict
  | _ ->
    enqueue s l dummy_clause;
    (match propagate s with
     | Some _ ->
       cancel_until s (decision_level s - 1);
       Probe_conflict
     | None -> Probe_ok (from_, Vec.size s.trail))

let probe_pop s =
  if decision_level s > 0 then cancel_until s (decision_level s - 1)

let probe_assert s l =
  if not s.ok then false
  else
    match value s l with
    | 1 -> true
    | 0 ->
      if decision_level s = 0 then s.ok <- false;
      false
    | _ -> (
        enqueue s l dummy_clause;
        match propagate s with
        | Some _ ->
          if decision_level s = 0 then s.ok <- false;
          false
        | None -> true)

let var_activity s v =
  if v < 0 || v >= s.nvars then 0. else s.activity.(v)
