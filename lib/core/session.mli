(** Incremental solving sessions (Sec. 6: iterative/incremental SAT).

    EDA workloads — BMC unrollings, per-fault ATPG, per-pair equivalence
    queries — solve long sequences of closely related instances.  A
    session keeps one {!Cdcl.t} alive across the whole sequence so that
    learned clauses, variable activities and saved phases transfer from
    query to query, instead of being rebuilt from scratch each time.

    A session supports, between [solve] calls:
    - growing the formula with {!add_clause} / {!add_formula} (new
      clauses are propagated at level 0 immediately and invalidate the
      cached model);
    - clause groups guarded by {e activation literals}
      ({!new_activation} / {!add_clause_in}): a group's clauses only bind
      in queries that assume its activation literal, and {!release}
      permanently disables the group via a unit clause;
    - per-call conflict/decision budgets and per-call statistics deltas
      ({!last_stats}), alongside the cumulative totals;
    - a learned-clause retention policy applied between queries (keep
      low-LBD "glue" clauses, drop clauses polluted by released
      activation literals). *)

type t

(** What to do with the learned-clause database between queries.  Under
    every policy except [Keep_all], clauses mentioning a {e released}
    activation variable are dropped — they are permanently satisfied by
    the release unit and only burden the watch lists. *)
type retention =
  | Keep_all  (** never prune between queries *)
  | Drop_released  (** only drop released-group pollution (default) *)
  | Keep_lbd of int
      (** additionally keep only clauses with LBD within the bound *)

val create : ?config:Types.config -> ?retention:retention -> unit -> t
(** An empty session (no variables, no clauses). *)

val of_formula :
  ?config:Types.config -> ?retention:retention -> Cnf.Formula.t -> t
(** A session seeded with a snapshot of the formula's clauses. *)

val set_retention : t -> retention -> unit

val nvars : t -> int
val new_var : t -> int

val apply_guidance : t -> Types.guidance -> unit
(** Seeds the underlying solver's VSIDS activities and saved phases
    (see {!Cdcl.apply_guidance}).  Sessions allocate variables lazily,
    so guidance must be applied {e after} the variables it targets
    exist; call it again as the variable space grows (e.g. per BMC
    frame or per sweep cone).  Legal between [solve] calls. *)

val add_clause : t -> Cnf.Lit.t list -> unit
(** Adds a permanent clause; legal between [solve] calls.  Units are
    propagated at level 0 immediately; the cached model is invalidated. *)

val add_formula : t -> Cnf.Formula.t -> unit
(** Adds every clause of the formula, interpreted in the session's
    variable numbering (the variable space grows as needed). *)

(* --- activation groups -------------------------------------------------- *)

val new_activation : t -> Cnf.Lit.t
(** Allocates a fresh activation literal [a].  Clauses registered with
    [add_clause_in ~group:a] only bind in queries whose assumptions
    include [a]. *)

val add_clause_in : t -> group:Cnf.Lit.t -> Cnf.Lit.t list -> unit
(** [add_clause_in t ~group:a c] adds the guarded clause [¬a ∨ c].
    Raises [Invalid_argument] if [a] did not come from
    {!new_activation} of this session or was already released. *)

val release : t -> Cnf.Lit.t -> unit
(** Permanently disables a group by adding the unit clause [¬a].  The
    group's clauses become satisfied, and learned clauses mentioning the
    activation variable are dropped by the next between-query retention
    pass.  Releasing twice is a no-op. *)

val is_active : t -> Cnf.Lit.t -> bool
(** Whether the literal is a live (unreleased) activation literal. *)

(* --- queries ------------------------------------------------------------- *)

val solve :
  ?assumptions:Cnf.Lit.t list ->
  ?max_conflicts:int ->
  ?max_decisions:int ->
  t ->
  Types.outcome
(** One query.  [assumptions] typically include activation literals of
    the clause groups the query should see.  The budgets bound this call
    only; a budgeted [Unknown "budget"] leaves the session fully
    reusable.  Before searching, the between-query retention policy is
    applied to the learned-clause database (from the second query on). *)

val minimize_assumptions :
  ?max_rounds:int ->
  ?max_conflicts:int ->
  t ->
  Cnf.Lit.t list ->
  Cnf.Lit.t list option
(** Shrinks an assumption set to a (locally) minimal subset under which
    the formula is still unsatisfiable — the core-driven assumption
    minimization used by incremental BMC and ATPG loops to turn a
    failing query into a small explanation.

    Returns [None] when the formula is satisfiable under [assumptions]
    (or the first query exhausts its budget), [Some []] when the formula
    is unsatisfiable outright, and otherwise [Some core] with
    [core ⊆ assumptions] (input order preserved) such that the formula
    is UNSAT under [core].

    The procedure first iterates the solver's [Unsat_assuming] core to a
    fixpoint (at most [max_rounds] extra queries, default 4) — re-solving
    under the previous core alone typically shrinks it — then runs one
    destructive pass dropping each surviving literal in turn, keeping a
    literal only when the query without it is SAT or exhausts its
    budget.  [max_conflicts] bounds {e each individual query}; with a
    budget, the result is still a correct core but may not be locally
    minimal.  Every query goes through {!solve}, so retention, metrics
    and {!queries} accounting all apply. *)

val interrupt : t -> unit
(** Requests cooperative interruption of the running (or next) [solve]
    — {!Cdcl.interrupt} on the underlying solver.  Safe to call from
    any domain: this is how a SAT service cancels a query whose client
    disconnected mid-solve.  The interrupted query returns
    [Unknown "interrupted"] and leaves the session fully reusable
    (learned clauses, activations and variable order intact). *)

val interrupt_requested : t -> bool
(** [true] while an {!interrupt} request is pending. *)

val clear_interrupt : t -> unit
(** Withdraws a pending {!interrupt} request — see
    {!Cdcl.clear_interrupt}.  Session pools call this before pooling an
    idle session so a cancellation that raced with query completion
    cannot abort the next tenant's query. *)

val model : t -> bool array option
(** The model cached by the last satisfiable [solve], or [None] if the
    last query was not SAT or the formula changed since ([add_clause],
    [add_formula], [add_clause_in], [release] all invalidate it). *)

val queries : t -> int
(** Number of [solve] calls so far. *)

val last_stats : t -> Types.stats
(** Statistics delta of the most recent query only. *)

(* --- observability ------------------------------------------------------- *)

val attach_metrics : t -> Metrics.t -> unit
(** Points the session at a metric registry: the underlying solver gets
    the standard {!Metrics.solver_instruments}, and every subsequent
    query increments ["session/queries"], observes its duration in the
    ["session/query_time_s"] histogram, and {e adds} its
    {!last_stats}-style delta into the ["solver/*"] counters — so one
    registry can aggregate across several sessions (the generalization
    of {!Types.diff_stats} to whole workloads). *)

val metrics : t -> Metrics.t option
(** The registry attached with {!attach_metrics}, if any. *)

val set_tracer : t -> Trace.sink option -> unit
(** Forwards to {!Cdcl.set_tracer} on the underlying solver; each query
    then appears in the trace as a [solve-begin] … [solve-end] span. *)

val cumulative_stats : t -> Types.stats
(** Totals across the session's lifetime (snapshot). *)

val raw : t -> Cdcl.t
(** The underlying solver, for plugins and diagnostics.  Mutating it
    behind the session's back voids the cached-model guarantees. *)
