(** Growable arrays, the workhorse container of the solver's mutable
    state (trail, watch lists, clause database). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never observable through the API. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** [get] without the bounds check.  The caller must prove [0 <= i < size];
    reserved for hot loops whose indices are loop-invariant-provably in
    bounds (the solver's propagation and conflict-analysis paths). *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** [set] without the bounds check; same proof obligation as
    {!unsafe_get}. *)

val raw : 'a t -> 'a array
(** The backing array.  Slots at indices [>= size] hold the dummy.  The
    reference is invalidated by any growth ([push] past capacity); only
    borrow it across code that cannot grow the vector. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element.  Raises [Invalid_argument] when
    empty. *)

val last : 'a t -> 'a
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates to the first [n] elements. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Sorts the live prefix in place (heapsort: O(1) extra space, no
    allocation, not stable). *)
