(** Indexed binary max-heap over variable indices, ordered by a mutable
    external score array (VSIDS activity).

    Scores are read straight from a flat [float array] shared with the
    owner — unboxed comparisons, no per-comparison closure call.  When a
    score changes, call {!update} to restore heap order for that
    element. *)

type t

val create : scores:float array -> int -> t
(** [create ~scores n] builds an empty heap admitting elements
    [0 .. n-1].  Every inserted element must index within [scores]. *)

val set_scores : t -> float array -> unit
(** Repoints the heap at a new score array — required when the owner
    reallocates it (capacity growth).  Heap order must already agree with
    the new array's values. *)

val grow : t -> int -> unit
(** [grow h n] extends the admissible element range to [0 .. n-1].  The
    score array must be (re)sized by the owner via {!set_scores}. *)

val insert : t -> int -> unit
(** No-op when the element is already present. *)

val mem : t -> int -> bool
val is_empty : t -> bool

val pop_max : t -> int
(** Removes and returns the element with the highest score.  Raises
    [Not_found] when empty. *)

val update : t -> int -> unit
(** Re-establishes heap order after the element's score changed.  No-op
    when the element is absent. *)

val rebuild : t -> int list -> unit
(** Clears the heap and inserts the given elements. *)
