(* Struct-of-arrays watcher lists: an [int array] of blocking literals
   alongside an [int array] of clause references (indices into the
   solver's clause table), instead of boxed (blocker, clause) tuples.
   The propagation loop reads the blocker stream sequentially, touches
   the clause table only when the blocker is not satisfied, and — both
   payloads being immediates — never pays the GC write barrier when
   keeping, moving, or compacting entries. *)

type t = {
  mutable blockers : int array;
  mutable crefs : int array;
  mutable size : int;
}

let create ?(capacity = 4) () =
  let cap = max capacity 1 in
  { blockers = Array.make cap 0; crefs = Array.make cap 0; size = 0 }

let size w = w.size
let is_empty w = w.size = 0

let grow w =
  let cap = Array.length w.crefs in
  let blockers = Array.make (cap * 2) 0 in
  let crefs = Array.make (cap * 2) 0 in
  Array.blit w.blockers 0 blockers 0 w.size;
  Array.blit w.crefs 0 crefs 0 w.size;
  w.blockers <- blockers;
  w.crefs <- crefs

let push w b cref =
  if w.size = Array.length w.crefs then grow w;
  Array.unsafe_set w.blockers w.size b;
  Array.unsafe_set w.crefs w.size cref;
  w.size <- w.size + 1

let blocker w i =
  if i < 0 || i >= w.size then invalid_arg "Watcher.blocker";
  w.blockers.(i)

let cref w i =
  if i < 0 || i >= w.size then invalid_arg "Watcher.cref";
  w.crefs.(i)

let unsafe_blocker w i = Array.unsafe_get w.blockers i
let unsafe_cref w i = Array.unsafe_get w.crefs i

let unsafe_set w i b cref =
  Array.unsafe_set w.blockers i b;
  Array.unsafe_set w.crefs i cref

let raw_blockers w = w.blockers
let raw_crefs w = w.crefs

let shrink w n =
  if n < 0 || n > w.size then invalid_arg "Watcher.shrink";
  w.size <- n

let clear w = shrink w 0

let iter f w =
  for i = 0 to w.size - 1 do
    f w.blockers.(i) w.crefs.(i)
  done

let filter_in_place p w =
  let j = ref 0 in
  for i = 0 to w.size - 1 do
    if p w.crefs.(i) then begin
      w.blockers.(!j) <- w.blockers.(i);
      w.crefs.(!j) <- w.crefs.(i);
      incr j
    end
  done;
  w.size <- !j
