(* Minimal JSON values: a deterministic printer and a recursive-descent
   parser.  See json.mli for the contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------ *)

(* Shortest decimal form that round-trips; JSON has no NaN/infinity, so
   those map to [null] rather than producing an invalid document. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b ~indent level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.is_integer f = false && Float.abs f = infinity
    then Buffer.add_string b "null"
    else if Float.abs f = infinity then Buffer.add_string b "null"
    else Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    newline ();
    List.iteri
      (fun i item ->
         if i > 0 then begin
           Buffer.add_char b ',';
           newline ()
         end;
         pad (level + 1);
         write b ~indent (level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    newline ();
    List.iteri
      (fun i (k, item) ->
         if i > 0 then begin
           Buffer.add_char b ',';
           newline ()
         end;
         pad (level + 1);
         escape_string b k;
         Buffer.add_string b (if indent then ": " else ":");
         write b ~indent (level + 1) item)
      fields;
    newline ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 256 in
  write b ~indent 0 v;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int; mutable depth : int }

(* Nesting bound for untrusted input (the satd wire protocol parses
   frames straight off the socket): deep enough for any document we
   produce, shallow enough that a hostile "[[[[…" frame cannot blow the
   stack. *)
let max_depth = 512

let fail c fmt =
  Printf.ksprintf
    (fun m -> raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos m)))
    fmt

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && (match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c "expected '%c', found '%c'" ch x
  | None -> fail c "expected '%c', found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c "invalid token"

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
       | None -> fail c "unterminated escape"
       | Some e ->
         c.pos <- c.pos + 1;
         (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if c.pos + 4 > String.length c.text then fail c "bad \\u escape";
            let hex = String.sub c.text c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape %s" hex
            in
            (* encode the code point as UTF-8 (BMP only; surrogate pairs
               are not recombined — sufficient for our own output) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
          | e -> fail c "invalid escape '\\%c'" e));
      go ()
    | Some ch when Char.code ch < 0x20 ->
      (* RFC 8259: control characters must be escaped *)
      fail c "unescaped control character 0x%02x in string" (Char.code ch)
    | Some ch ->
      Buffer.add_char b ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

(* RFC 8259 number grammar: optional minus; integer part '0' or a
   nonzero digit followed by digits (no leading zeros); optional
   fraction '.' digits; optional exponent [eE][+-]digits.
   [float_of_string] is far laxer (hex floats, "nan", leading zeros,
   "1.", ".5"), so the token is validated before conversion — the wire
   protocol must not accept what it would never emit. *)
let valid_number s =
  let n = String.length s in
  let digits i =
    let j = ref i in
    while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
    !j
  in
  let i = if n > 0 && s.[0] = '-' then 1 else 0 in
  if i >= n then false
  else
    (* integer part: no leading zeros *)
    let i =
      if s.[i] = '0' then i + 1
      else
        let j = digits i in
        if j = i then -1 else j
    in
    if i < 0 then false
    else if i = n then true
    else
      let i =
        if s.[i] = '.' then
          let j = digits (i + 1) in
          if j = i + 1 then -1 else j
        else i
      in
      if i < 0 then false
      else if i = n then true
      else if s.[i] <> 'e' && s.[i] <> 'E' then false
      else
        let i = i + 1 in
        let i = if i < n && (s.[i] = '+' || s.[i] = '-') then i + 1 else i in
        let j = digits i in
        j > i && j = n

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.text && is_num_char c.text.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  if s = "" then fail c "expected a number";
  if not (valid_number s) then fail c "malformed number %s" s;
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s
  in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "malformed number %s" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (* integer overflow: fall back to float *)
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> fail c "malformed number %s" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    c.depth <- c.depth + 1;
    if c.depth > max_depth then fail c "nesting deeper than %d" max_depth;
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      c.depth <- c.depth - 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> fail c "expected ',' or '}'"
      in
      members ();
      c.depth <- c.depth - 1;
      Obj (List.rev !fields)
    end
  | Some '[' ->
    c.depth <- c.depth + 1;
    if c.depth > max_depth then fail c "nesting deeper than %d" max_depth;
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      c.depth <- c.depth - 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> fail c "expected ',' or ']'"
      in
      elements ();
      c.depth <- c.depth - 1;
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse_exn text =
  let c = { text; pos = 0; depth = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail c "trailing characters";
  v

let parse text =
  match parse_exn text with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* --- framing -------------------------------------------------------------- *)

(* A frame is exactly one JSON value on one line: no embedded newlines
   (not even as insignificant whitespace — a value spanning lines is a
   framing violation, not a parse ambiguity), no trailing garbage. *)
let parse_line line =
  if String.exists (fun c -> c = '\n' || c = '\r') line then
    Error "frame contains a newline"
  else parse line

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
    (* tolerate CRLF framing from foreign clients *)
    let n = String.length line in
    let line =
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    Some (parse_line line)

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> String.equal x y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         x y
  | _ -> false
