type engine =
  | Cdcl of Types.config
  | Dpll of Types.config
  | Walksat of Local_search.config
  | Portfolio of Portfolio.options
  | Cube_conquer of Conquer.options

type pipeline = {
  preprocess : bool;
  elim : bool;
  probe_failed_literals : bool;
  equivalence : bool;
  recursive_learning : int;
}

let no_pipeline =
  { preprocess = false; elim = false; probe_failed_literals = false;
    equivalence = false; recursive_learning = 0 }

let full_pipeline =
  { preprocess = true; elim = true; probe_failed_literals = false;
    equivalence = true; recursive_learning = 1 }

(* Only a single sequential CDCL engine produces a complete DRAT
   stream: portfolio and cube-and-conquer workers import foreign
   clauses that never enter their own proofs, and the DPLL and local
   search engines record nothing. *)
let proof_producing = function
  | Cdcl c -> c.Types.proof_logging
  | Dpll _ | Walksat _ | Portfolio _ | Cube_conquer _ -> false

type report = {
  outcome : Types.outcome;
  solver_stats : Types.stats option;
  preprocess_stats : Preprocess.stats option;
  equivalence_merged : int;
  recursive_learning_implicates : int;
  proof : Types.proof_step list option;
  time_seconds : float;
}

let run_engine ?metrics ?trace engine f =
  match engine with
  | Cdcl cfg ->
    let s = Cdcl.create ~config:cfg f in
    (match metrics with
     | Some m -> Cdcl.set_instruments s (Some (Metrics.solver_instruments m))
     | None -> ());
    Cdcl.set_metrics s metrics;
    Cdcl.set_tracer s trace;
    let outcome = Cdcl.solve s in
    (match metrics with
     | Some m -> Metrics.add_stats m (Cdcl.stats s)
     | None -> ());
    let proof = if cfg.Types.proof_logging then Some (Cdcl.proof s) else None in
    (outcome, Some (Cdcl.stats s), proof)
  | Dpll cfg ->
    let outcome, st = Dpll.solve ~config:cfg f in
    (match metrics with Some m -> Metrics.add_stats m st | None -> ());
    (outcome, Some st, None)
  | Walksat cfg ->
    let r = Local_search.solve ~config:cfg f in
    (r.outcome, None, None)
  | Portfolio opts ->
    (* explicit options on the engine win over the per-call arguments *)
    let opts =
      { opts with
        Portfolio.metrics =
          (match opts.Portfolio.metrics with Some _ as m -> m | None -> metrics);
        trace =
          (match opts.Portfolio.trace with Some _ as t -> t | None -> trace) }
    in
    let r = Portfolio.solve ~options:opts f in
    (r.Portfolio.outcome, Some r.Portfolio.stats, None)
  | Cube_conquer opts ->
    let opts =
      { opts with
        Conquer.metrics =
          (match opts.Conquer.metrics with Some _ as m -> m | None -> metrics);
        trace =
          (match opts.Conquer.trace with Some _ as t -> t | None -> trace) }
    in
    let r = Conquer.solve ~options:opts f in
    (r.Conquer.outcome, Some r.Conquer.stats, None)

let solve ?metrics ?trace ?(engine = Cdcl Types.default)
    ?(pipeline = no_pipeline) f =
  let t0 = Unix.gettimeofday () in
  let phase name body =
    (match trace with
     | Some tr -> Trace.emit tr (Trace.Phase_begin name)
     | None -> ());
    (match metrics with Some m -> Metrics.phase_begin m name | None -> ());
    let r = body () in
    (match metrics with Some m -> Metrics.phase_end m name | None -> ());
    (match trace with
     | Some tr -> Trace.emit tr (Trace.Phase_end name)
     | None -> ());
    r
  in
  let preprocess_stats = ref None in
  let equivalence_merged = ref 0 in
  let rl_implicates = ref 0 in
  (* With a proof-producing engine the preprocessor emits its own DRAT
     steps (resolvent additions and clause deletions), and the stages
     that cannot yet certify their rewrites — equivalence reasoning and
     recursive learning — are skipped so the combined stream refutes
     the original formula. *)
  let proofs_on = proof_producing engine in
  let pre_steps = ref [] in
  (* each stage yields the formula to solve plus a model-lifting step *)
  let lift0 m = m in
  let stage_preprocess (f, lift) =
    if not pipeline.preprocess then `Go (f, lift)
    else
      phase "pipeline/preprocess" (fun () ->
        let proof =
          if proofs_on then Some (fun s -> pre_steps := s :: !pre_steps)
          else None
        in
        match
          Preprocess.run ~elim:pipeline.elim
            ~probe_failed_literals:pipeline.probe_failed_literals ?proof f
        with
        | Preprocess.Unsat -> `Unsat
        | Preprocess.Simplified simp ->
          preprocess_stats := Some simp.Preprocess.stats;
          (match metrics with
           | Some m ->
             let st = simp.Preprocess.stats in
             let c name v = Metrics.incr ~by:v (Metrics.counter m name) in
             c "preprocess/units" st.Preprocess.units;
             c "preprocess/pures" st.Preprocess.pures;
             c "preprocess/subsumed" st.Preprocess.subsumed;
             c "preprocess/strengthened" st.Preprocess.strengthened;
             c "preprocess/failed_literals" st.Preprocess.failed_literals;
             c "preprocess/vars_eliminated" st.Preprocess.eliminated;
             c "preprocess/clauses_removed" st.Preprocess.elim_clauses_removed
           | None -> ());
          `Go
            ( simp.Preprocess.formula,
              fun m -> lift (Preprocess.complete_model simp m) ))
  in
  let stage_equivalence (f, lift) =
    if (not pipeline.equivalence) || proofs_on then `Go (f, lift)
    else
      phase "pipeline/equivalence" (fun () ->
        match Equivalence.detect f with
        | Equivalence.Unsat_equiv -> `Unsat
        | Equivalence.Reduced red ->
          equivalence_merged := red.Equivalence.merged;
          `Go
            ( red.Equivalence.formula,
              fun m ->
                lift (Equivalence.complete_model ~rep:red.Equivalence.rep m) ))
  in
  let stage_rl (f, lift) =
    if pipeline.recursive_learning <= 0 || proofs_on then `Go (f, lift)
    else
      phase "pipeline/recursive_learning" (fun () ->
        let g, r =
          Recursive_learning.strengthen ~depth:pipeline.recursive_learning f
        in
        rl_implicates := List.length r.Recursive_learning.implicates;
        if r.Recursive_learning.unsat then `Unsat else `Go (g, lift))
  in
  let finish outcome solver_stats proof =
    {
      outcome;
      solver_stats;
      preprocess_stats = !preprocess_stats;
      equivalence_merged = !equivalence_merged;
      recursive_learning_implicates = !rl_implicates;
      proof;
      time_seconds = Unix.gettimeofday () -. t0;
    }
  in
  let combined_proof engine_steps =
    if not proofs_on then None
    else Some (List.rev_append !pre_steps (Option.value engine_steps ~default:[]))
  in
  let ( >>= ) x k = match x with `Unsat -> `Unsat | `Go y -> k y in
  let staged =
    stage_preprocess (f, lift0)
    >>= fun x -> stage_equivalence x
    >>= fun x -> stage_rl x
  in
  match staged with
  | `Unsat ->
    (* preprocessing refuted the formula; its emitted stream already
       ends with the empty clause *)
    finish Types.Unsat None (combined_proof None)
  | `Go (g, lift) ->
    let outcome, st, engine_proof =
      phase "solve" (fun () -> run_engine ?metrics ?trace engine g)
    in
    let outcome =
      match outcome with
      | Types.Sat m ->
        (* pad in case simplification dropped trailing variables *)
        let n = Cnf.Formula.nvars f in
        let padded =
          Array.init (max n (Array.length m)) (fun v ->
              if v < Array.length m then m.(v) else false)
        in
        Types.Sat (lift padded)
      | (Types.Unsat | Types.Unsat_assuming _ | Types.Unknown _) as o -> o
    in
    finish outcome st (combined_proof engine_proof)

let solve_dimacs ?metrics ?trace ?engine ?pipeline text =
  solve ?metrics ?trace ?engine ?pipeline (Cnf.Dimacs.parse_string text)

(* --- incremental front: simplify once, serve many queries ---------------- *)

module Incremental = struct
  module Lit = Cnf.Lit

  type t = {
    session : Session.t;
    rep : Lit.t array option;
        (* equivalence substitution over the original variable space *)
    original_nvars : int;
    preprocess_stats : Preprocess.stats option;
    equivalence_merged : int;
    recursive_learning_implicates : int;
  }

  (* Map a literal through the equivalence substitution.  Variables
     allocated after [open_session] (activation literals, frame copies)
     are outside [rep] and map to themselves. *)
  let subst t l =
    match t.rep with
    | None -> l
    | Some rep ->
      let v = Lit.var l in
      if v >= Array.length rep then l
      else
        let r = rep.(v) in
        if Lit.is_pos l then r else Lit.negate r

  let open_session ?metrics ?trace ?(config = Types.default)
      ?(pipeline = full_pipeline) ?retention f =
    let preprocess_stats = ref None in
    let equivalence_merged = ref 0 in
    let rl_implicates = ref 0 in
    let rep = ref None in
    let unsat = ref false in
    let fixes = ref [] in
    let g = ref f in
    if pipeline.preprocess && not !unsat then begin
      (* [pures] off: a pure literal's value is satisfiability-preserving
         but not implied, so it may not be baked into a formula the
         session will keep growing.  Units and failed literals ARE
         implied; they are re-asserted below so query models include
         them.  [elim] off: session growth may constrain any original
         variable, and an eliminated variable no longer exists in the
         simplified formula — there is no safe frozen set short of
         everything, so bounded elimination is disabled outright. *)
      match
        Preprocess.run ~pures:false ~elim:false
          ~probe_failed_literals:pipeline.probe_failed_literals !g
      with
      | Preprocess.Unsat -> unsat := true
      | Preprocess.Simplified simp ->
        preprocess_stats := Some simp.Preprocess.stats;
        fixes := simp.Preprocess.fix;
        g := simp.Preprocess.formula
    end;
    if pipeline.equivalence && not !unsat then begin
      match Equivalence.detect !g with
      | Equivalence.Unsat_equiv -> unsat := true
      | Equivalence.Reduced red ->
        equivalence_merged := red.Equivalence.merged;
        rep := Some red.Equivalence.rep;
        g := red.Equivalence.formula
    end;
    if pipeline.recursive_learning > 0 && not !unsat then begin
      let g', r =
        Recursive_learning.strengthen ~depth:pipeline.recursive_learning !g
      in
      rl_implicates := List.length r.Recursive_learning.implicates;
      if r.Recursive_learning.unsat then unsat := true else g := g'
    end;
    let session =
      if !unsat then begin
        let s = Session.create ~config ?retention () in
        Session.add_clause s [];
        s
      end
      else Session.of_formula ~config ?retention !g
    in
    (match metrics with
     | Some m -> Session.attach_metrics session m
     | None -> ());
    (match trace with Some _ -> Session.set_tracer session trace | None -> ());
    let t =
      {
        session;
        rep = !rep;
        original_nvars = Cnf.Formula.nvars f;
        preprocess_stats = !preprocess_stats;
        equivalence_merged = !equivalence_merged;
        recursive_learning_implicates = !rl_implicates;
      }
    in
    (* re-assert the preprocessor's implied fixes (units, failed
       literals) so every query model carries them *)
    if not !unsat then
      List.iter
        (fun (v, b) ->
           Session.add_clause session
             [ subst t (if b then Lit.pos v else Lit.neg_of_var v) ])
        !fixes;
    t

  let session t = t.session
  let new_var t = Session.new_var t.session
  let add_clause t lits = Session.add_clause t.session (List.map (subst t) lits)
  let new_activation t = Session.new_activation t.session

  let add_clause_in t ~group lits =
    Session.add_clause_in t.session ~group (List.map (subst t) lits)

  let release t a = Session.release t.session a

  let lift t m =
    let padded =
      Array.init
        (max t.original_nvars (Array.length m))
        (fun v -> if v < Array.length m then m.(v) else false)
    in
    match t.rep with
    | None -> padded
    | Some rep -> Equivalence.complete_model ~rep padded

  let solve ?(assumptions = []) ?max_conflicts ?max_decisions t =
    let assumptions = List.map (subst t) assumptions in
    match
      Session.solve ~assumptions ?max_conflicts ?max_decisions t.session
    with
    | Types.Sat m -> Types.Sat (lift t m)
    | (Types.Unsat | Types.Unsat_assuming _ | Types.Unknown _) as o -> o

  let last_stats t = Session.last_stats t.session
  let cumulative_stats t = Session.cumulative_stats t.session
  let queries t = Session.queries t.session
  let preprocess_stats t = t.preprocess_stats
  let equivalence_merged t = t.equivalence_merged
  let recursive_learning_implicates t = t.recursive_learning_implicates
end

(* --- auto-tuned front: measure the instance, then pick the recipe -------- *)

module Auto = struct
  type plan = {
    features : Autotune.features;
    policy : Autotune.policy;
    guidance : Types.guidance option;
    engine : engine;
    pipeline : pipeline;
  }

  (* Pre_basic deliberately drops the formula-rewriting stages
     (equivalence, recursive learning) along with elimination: the
     cheap tier should also be the predictable one. *)
  let pipeline_of = function
    | Autotune.Pre_off -> no_pipeline
    | Autotune.Pre_basic ->
      { preprocess = true; elim = false; probe_failed_literals = false;
        equivalence = false; recursive_learning = 0 }
    | Autotune.Pre_full -> full_pipeline

  let plan ?(jobs = 1) ?probes ?(config = Types.default) f =
    let features = Autotune.extract ?probes f in
    let policy = Autotune.select ~jobs features in
    let cfg =
      { config with
        Types.restarts = policy.Autotune.restarts;
        inprocessing = policy.Autotune.inprocessing }
    in
    let guidance =
      if policy.Autotune.guided then
        let g = Guide.of_formula f in
        if Guide.is_empty g then None else Some g
      else None
    in
    let cfg =
      match guidance with Some g -> Guide.apply_config g cfg | None -> cfg
    in
    let engine =
      match policy.Autotune.engine with
      | Autotune.Sequential -> Cdcl cfg
      | Autotune.Portfolio_race j ->
        Portfolio
          { Portfolio.default_options with Portfolio.jobs = j; config = cfg }
      | Autotune.Cube_conquer j ->
        Cube_conquer
          { Conquer.default_options with Conquer.jobs = j; config = cfg }
    in
    { features; policy; guidance; engine;
      pipeline = pipeline_of policy.Autotune.preprocess }

  let solve_plan ?metrics ?trace p f =
    (match metrics with
     | Some m ->
       Autotune.emit_metrics m p.features p.policy;
       Option.iter (Guide.emit_metrics m) p.guidance
     | None -> ());
    solve ?metrics ?trace ~engine:p.engine ~pipeline:p.pipeline f

  let solve ?metrics ?trace ?jobs ?probes ?config f =
    let p = plan ?jobs ?probes ?config f in
    (p, solve_plan ?metrics ?trace p f)
end
