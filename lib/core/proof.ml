(* DRAT proof checking, backward trimming to LRAT, and unsat cores.
   The format and algorithms are specified in docs/PROOFS.md; keep the
   two in sync. *)

module Lit = Cnf.Lit
module Clause = Cnf.Clause

type step = Types.proof_step = Add of Clause.t | Delete of Clause.t

type verdict =
  | Valid_refutation
  | Valid_derivation
  | Invalid_step of int

type lrat_line = { id : int; lits : Clause.t; hints : int list }

type trim_result =
  | Trimmed of {
      lines : lrat_line list;
      core : int list;
      kept_adds : int;
      total_adds : int;
    }
  | Not_refutation
  | Trim_invalid of int

(* ------------------------------------------------------------------ *)
(* Checker clause database: two watched literals, O(1) activate /
   deactivate (inactive clauses stay in their watch lists and are
   skipped during traversal), scratch propagation per RUP check.       *)
(* ------------------------------------------------------------------ *)

type cls = {
  id : int; (* 1-based; originals are 1..n in formula order *)
  lits : Lit.t array; (* watches live in slots 0 and 1 when size >= 2 *)
  key : Lit.t list; (* canonical sorted content, for deletion matching *)
  mutable active : bool;
  mutable marked : bool; (* needed for the refutation (backward trim) *)
}

type db = {
  by_id : (int, cls) Hashtbl.t;
  stacks : (Lit.t list, cls list ref) Hashtbl.t;
      (* content -> active copies, most recent first *)
  watches : cls Vec.t array; (* literal-indexed *)
  mutable units : cls list; (* every size-1 clause ever added *)
  mutable empties : cls list; (* every size-0 clause ever added *)
  value : int array; (* var -> 0 unassigned / 1 true / -1 false *)
  reason : int array; (* var -> asserting clause id; 0 = assumption *)
  seen : bool array; (* conflict-analysis scratch, cleared after use *)
  trail : Lit.t Vec.t;
  mutable qhead : int;
  mutable next_id : int;
}

let lit_value db l =
  let v = db.value.(Lit.var l) in
  if v = 0 then 0 else if Lit.is_pos l then v else -v

let max_var_steps steps =
  List.fold_left
    (fun acc s ->
      let c = match s with Add c | Delete c -> c in
      List.fold_left (fun acc l -> max acc (Lit.var l)) acc (Clause.to_list c))
    (-1) steps

let dummy_cls = { id = 0; lits = [||]; key = []; active = false; marked = false }

let stack db key =
  match Hashtbl.find_opt db.stacks key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add db.stacks key r;
    r

let stack_remove db c =
  let r = stack db c.key in
  let rec drop = function
    | [] -> []
    | x :: rest -> if x == c then rest else x :: drop rest
  in
  r := drop !r

(* Register a fresh clause's watches; id bookkeeping is the caller's. *)
let attach db c =
  Hashtbl.replace db.by_id c.id c;
  let len = Array.length c.lits in
  if len >= 2 then begin
    Vec.push db.watches.(c.lits.(0)) c;
    Vec.push db.watches.(c.lits.(1)) c
  end
  else if len = 1 then db.units <- c :: db.units
  else db.empties <- c :: db.empties

let add_active db clause =
  let c =
    {
      id = db.next_id;
      lits = Clause.to_array clause;
      key = Clause.to_list clause;
      active = true;
      marked = false;
    }
  in
  db.next_id <- db.next_id + 1;
  attach db c;
  let r = stack db c.key in
  r := c :: !r;
  c

(* Deletion by content: deactivate the most recently added active copy.
   Unmatched deletions (e.g. of clauses imported from a peer solver and
   never added to this proof) are ignored. *)
let try_deactivate db clause =
  let r = stack db (Clause.to_list clause) in
  match !r with
  | [] -> None
  | c :: rest ->
    r := rest;
    c.active <- false;
    Some c

let deactivate db c =
  c.active <- false;
  stack_remove db c

let reactivate db c =
  c.active <- true;
  let r = stack db c.key in
  r := c :: !r

let build formula steps =
  let nvars =
    max (Cnf.Formula.nvars formula) (max_var_steps steps + 1)
  in
  let db =
    {
      by_id = Hashtbl.create 4096;
      stacks = Hashtbl.create 4096;
      watches = Array.init (2 * nvars) (fun _ -> Vec.create ~dummy:dummy_cls ());
      units = [];
      empties = [];
      value = Array.make (max nvars 1) 0;
      reason = Array.make (max nvars 1) 0;
      seen = Array.make (max nvars 1) false;
      trail = Vec.create ~dummy:0 ();
      qhead = 0;
      next_id = 1;
    }
  in
  Array.iter (fun c -> ignore (add_active db c)) (Cnf.Formula.clauses formula);
  db

let n_originals db = Hashtbl.length db.by_id (* only valid right after build *)

let enqueue db l reason_id =
  db.value.(Lit.var l) <- (if Lit.is_pos l then 1 else -1);
  db.reason.(Lit.var l) <- reason_id;
  Vec.push db.trail l

let propagate db =
  let confl = ref 0 in
  while !confl = 0 && db.qhead < Vec.size db.trail do
    let l = Vec.get db.trail db.qhead in
    db.qhead <- db.qhead + 1;
    let fl = Lit.negate l in
    let ws = db.watches.(fl) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.active then begin
        Vec.set ws !j c;
        incr j
      end
      else begin
        let lits = c.lits in
        if lits.(0) = fl then begin
          lits.(0) <- lits.(1);
          lits.(1) <- fl
        end;
        let w0 = lits.(0) in
        if lit_value db w0 = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && lit_value db lits.(!k) = -1 do
            incr k
          done;
          if !k < len then begin
            (* relocate the false watch; drop from this list *)
            lits.(1) <- lits.(!k);
            lits.(!k) <- fl;
            Vec.push db.watches.(lits.(1)) c
          end
          else if lit_value db w0 = -1 then begin
            confl := c.id;
            Vec.set ws !j c;
            incr j;
            while !i < n do
              Vec.set ws !j (Vec.get ws !i);
              incr j;
              incr i
            done
          end
          else begin
            enqueue db w0 c.id;
            Vec.set ws !j c;
            incr j
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* RUP check: assert the negation of every literal of [lits], propagate
   active unit clauses to fixpoint.  Returns the conflicting clause id,
   or 0 if no conflict (the clause is not RUP).  The trail is left in
   place so hints can be extracted; the caller must [unwind]. *)
let check_rup db lits =
  let confl = ref 0 in
  (match List.find_opt (fun c -> c.active) db.empties with
  | Some c -> confl := c.id
  | None -> ());
  List.iter
    (fun l ->
      if !confl = 0 then
        let nl = Lit.negate l in
        match lit_value db nl with
        | 1 -> () (* duplicate assumption *)
        | -1 -> () (* tautological input; callers filter these out *)
        | _ -> enqueue db nl 0)
    lits;
  List.iter
    (fun c ->
      if !confl = 0 && c.active then
        let u = c.lits.(0) in
        match lit_value db u with
        | 1 -> ()
        | -1 -> confl := c.id
        | _ -> enqueue db u c.id)
    db.units;
  if !confl = 0 then confl := propagate db;
  !confl

let unwind db =
  Vec.iter (fun l -> db.value.(Lit.var l) <- 0) db.trail;
  Vec.clear db.trail;
  db.qhead <- 0

(* From a conflict, collect the antecedent hint ids: mark the conflict
   clause's variables, walk the trail backward including each used
   reason transitively, and return the used reason ids in trail order
   followed by the conflicting clause id — exactly the order in which
   an LRAT checker can replay them as unit propagations.  When [mark],
   flag every hint clause as needed for the refutation. *)
let analyze db confl_id ~mark =
  let touched = ref [] in
  let mark_clause c =
    Array.iter
      (fun l ->
        let v = Lit.var l in
        if not db.seen.(v) then begin
          db.seen.(v) <- true;
          touched := v :: !touched
        end)
      c.lits
  in
  let confl = Hashtbl.find db.by_id confl_id in
  if mark then confl.marked <- true;
  mark_clause confl;
  let hints = ref [] in
  for i = Vec.size db.trail - 1 downto 0 do
    let v = Lit.var (Vec.get db.trail i) in
    if db.seen.(v) then begin
      let r = db.reason.(v) in
      if r > 0 then begin
        let rc = Hashtbl.find db.by_id r in
        if mark then rc.marked <- true;
        mark_clause rc;
        hints := r :: !hints
      end
    end
  done;
  List.iter (fun v -> db.seen.(v) <- false) !touched;
  !hints @ [ confl_id ]

(* ------------------------------------------------------------------ *)
(* Forward checking                                                    *)
(* ------------------------------------------------------------------ *)

let check formula steps =
  let db = build formula steps in
  let rec go i = function
    | [] ->
      let confl = check_rup db [] in
      unwind db;
      if confl <> 0 then Valid_refutation else Valid_derivation
    | Add c :: rest when Clause.is_tautology c ->
      (* tautologies are trivially valid and propagation-inert *)
      go (i + 1) rest
    | Add c :: rest ->
      let confl = check_rup db (Clause.to_list c) in
      unwind db;
      if confl = 0 then Invalid_step i
      else if Clause.is_empty c then Valid_refutation
      else begin
        ignore (add_active db c);
        go (i + 1) rest
      end
    | Delete c :: rest ->
      if not (Clause.is_tautology c) then ignore (try_deactivate db c);
      go (i + 1) rest
  in
  go 0 steps

(* ------------------------------------------------------------------ *)
(* Backward trimming                                                   *)
(* ------------------------------------------------------------------ *)

type replayed = R_add of cls | R_del of cls option

let trim formula steps =
  let db = build formula steps in
  let n_orig = n_originals db in
  (* Forward ingestion, no checking: replay adds/deletes so the final
     active set is in place, remembering each effect for the backward
     undo.  An explicit empty-clause addition truncates the stream. *)
  let rec ingest i acc = function
    | [] -> List.rev acc
    | Add c :: _ when Clause.is_empty c -> List.rev acc
    | Add c :: rest when Clause.is_tautology c -> ingest (i + 1) acc rest
    | Add c :: rest ->
      let cl = add_active db c in
      ingest (i + 1) ((i, R_add cl) :: acc) rest
    | Delete c :: rest when Clause.is_tautology c -> ingest (i + 1) acc rest
    | Delete c :: rest ->
      let t = try_deactivate db c in
      ingest (i + 1) ((i, R_del t) :: acc) rest
  in
  let recs = ingest 0 [] steps in
  let total_adds =
    List.length (List.filter (function _, R_add _ -> true | _ -> false) recs)
  in
  (* Terminal conflict: the empty clause must be RUP over the final
     active set.  This also covers proofs with no explicit empty clause
     (the CDCL engine stops at the root conflict without recording
     one). *)
  let confl = check_rup db [] in
  if confl = 0 then begin
    unwind db;
    Not_refutation
  end
  else begin
    let terminal_hints = analyze db confl ~mark:true in
    unwind db;
    let terminal =
      { id = db.next_id; lits = Clause.of_list []; hints = terminal_hints }
    in
    (* Backward pass: undo each step; verify (and collect hints for)
       only the additions marked as needed.  Unmarked additions are
       trimmed from the certificate without validation. *)
    let exception Invalid of int in
    let lines = ref [ terminal ] in
    match
      List.iter
        (fun (idx, r) ->
          match r with
          | R_del None -> ()
          | R_del (Some c) -> reactivate db c
          | R_add c ->
            deactivate db c;
            if c.marked then begin
              let key = c.key in
              let confl = check_rup db key in
              if confl = 0 then begin
                unwind db;
                raise (Invalid idx)
              end;
              let hints = analyze db confl ~mark:true in
              unwind db;
              lines :=
                { id = c.id; lits = Clause.of_list key; hints } :: !lines
            end)
        (List.rev recs)
    with
    | () ->
      let core = ref [] in
      for id = n_orig downto 1 do
        let c = Hashtbl.find db.by_id id in
        if c.marked then core := id :: !core
      done;
      Trimmed
        {
          lines = !lines;
          core = !core;
          kept_adds = List.length !lines - 1;
          total_adds;
        }
    | exception Invalid idx -> Trim_invalid idx
  end

let core_clauses formula core =
  let cls = Cnf.Formula.clauses formula in
  List.map (fun id -> cls.(id - 1)) core

let core_formula formula core =
  Cnf.Formula.of_clauses
    ~nvars:(Cnf.Formula.nvars formula)
    (core_clauses formula core)

(* ------------------------------------------------------------------ *)
(* Independent LRAT checking (linear, hint-driven; no search)          *)
(* ------------------------------------------------------------------ *)

let check_lrat formula lines =
  let ( let* ) = Result.bind in
  let err line fmt = Format.kasprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt in
  let tbl : (int, Lit.t array) Hashtbl.t = Hashtbl.create 4096 in
  let cls = Cnf.Formula.clauses formula in
  Array.iteri (fun i c -> Hashtbl.replace tbl (i + 1) (Clause.to_array c)) cls;
  let nvars =
    List.fold_left
      (fun acc (ln : lrat_line) ->
        List.fold_left
          (fun a l -> max a (Lit.var l + 1))
          acc
          (Clause.to_list ln.lits))
      (Cnf.Formula.nvars formula)
      lines
  in
  let value = Array.make (max nvars 1) 0 in
  let lit_value l =
    let v = value.(Lit.var l) in
    if v = 0 then 0 else if Lit.is_pos l then v else -v
  in
  let assigned = ref [] in
  let assign l =
    value.(Lit.var l) <- (if Lit.is_pos l then 1 else -1);
    assigned := Lit.var l :: !assigned
  in
  let unwind () =
    List.iter (fun v -> value.(v) <- 0) !assigned;
    assigned := []
  in
  let check_line lineno ({ id; lits; hints } : lrat_line) last_id =
    if id <= last_id then err lineno "id %d not above previous id %d" id last_id
    else if Clause.is_tautology lits then begin
      (* trivially valid; our writer never emits these *)
      Hashtbl.replace tbl id (Clause.to_array lits);
      Ok id
    end
    else begin
      List.iter (fun l -> assign (Lit.negate l)) (Clause.to_list lits);
      let rec run = function
        | [] -> err lineno "hints ended without a conflict"
        | h :: rest ->
          if h <= 0 then err lineno "RAT hint %d unsupported" h
          else begin
            match Hashtbl.find_opt tbl h with
            | None -> err lineno "hint %d names an unknown clause" h
            | Some hlits ->
              let unassigned = ref 0 in
              let pivot = ref 0 in
              let satisfied = ref false in
              Array.iter
                (fun l ->
                  match lit_value l with
                  | 1 -> satisfied := true
                  | -1 -> ()
                  | _ ->
                    incr unassigned;
                    pivot := l)
                hlits;
              if !satisfied then err lineno "hint %d is satisfied, not unit" h
              else if !unassigned = 0 then
                if rest = [] then Ok ()
                else err lineno "hint %d conflicts before the final hint" h
              else if !unassigned = 1 then begin
                assign !pivot;
                run rest
              end
              else err lineno "hint %d is not unit (%d unassigned)" h !unassigned
          end
      in
      let r = run hints in
      unwind ();
      let* () = r in
      Hashtbl.replace tbl id (Clause.to_array lits);
      Ok id
    end
  in
  let rec go lineno last_id = function
    | [] -> Error "proof ends without an empty-clause line"
    | [ (last : lrat_line) ] ->
      if not (Clause.is_empty last.lits) then
        err lineno "final line is not the empty clause"
      else
        let* _ = check_line lineno last last_id in
        Ok ()
    | line :: rest ->
      let* last_id = check_line lineno line last_id in
      go (lineno + 1) last_id rest
  in
  go 1 (Array.length cls) lines

(* ------------------------------------------------------------------ *)
(* Text formats                                                        *)
(* ------------------------------------------------------------------ *)

let output_step buf step =
  let c, del = match step with Add c -> (c, false) | Delete c -> (c, true) in
  if del then Buffer.add_string buf "d ";
  List.iter
    (fun l ->
      Buffer.add_string buf (string_of_int (Lit.to_dimacs l));
      Buffer.add_char buf ' ')
    (Clause.to_list c);
  Buffer.add_string buf "0\n"

let drat_to_string steps =
  let buf = Buffer.create 4096 in
  List.iter (output_step buf) steps;
  Buffer.contents buf

let write_drat oc steps = output_string oc (drat_to_string steps)

let write_drat_file path steps =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_drat oc steps)

let parse_drat text =
  let steps = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" && line.[0] <> 'c' then begin
           let toks =
             String.split_on_char ' ' line
             |> List.filter (fun t -> t <> "")
           in
           let del, toks =
             match toks with "d" :: rest -> (true, rest) | _ -> (false, toks)
           in
           let ints =
             List.map
               (fun t ->
                 match int_of_string_opt t with
                 | Some v -> v
                 | None ->
                   failwith
                     (Printf.sprintf "DRAT parse error at line %d: %S" !lineno t))
               toks
           in
           match List.rev ints with
           | 0 :: rev_lits ->
             let c =
               Clause.of_list (List.rev_map Lit.of_dimacs rev_lits)
             in
             steps := (if del then Delete c else Add c) :: !steps
           | _ ->
             failwith
               (Printf.sprintf "DRAT parse error at line %d: missing 0" !lineno)
         end);
  List.rev !steps

let parse_drat_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_drat (In_channel.input_all ic))

let lrat_to_string lines =
  let buf = Buffer.create 4096 in
  List.iter
    (fun { id; lits; hints } ->
      Buffer.add_string buf (string_of_int id);
      Buffer.add_char buf ' ';
      List.iter
        (fun l ->
          Buffer.add_string buf (string_of_int (Lit.to_dimacs l));
          Buffer.add_char buf ' ')
        (Clause.to_list lits);
      Buffer.add_string buf "0 ";
      List.iter
        (fun h ->
          Buffer.add_string buf (string_of_int h);
          Buffer.add_char buf ' ')
        hints;
      Buffer.add_string buf "0\n")
    lines;
  Buffer.contents buf

let write_lrat oc lines = output_string oc (lrat_to_string lines)

let write_lrat_file path lines =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_lrat oc lines)

let parse_lrat text =
  let lines = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" && line.[0] <> 'c' then begin
           let toks =
             String.split_on_char ' ' line
             |> List.filter (fun t -> t <> "")
           in
           match toks with
           | _ :: "d" :: _ -> () (* deletion lines are ignored *)
           | id :: rest -> (
             let fail () =
               failwith
                 (Printf.sprintf "LRAT parse error at line %d" !lineno)
             in
             let id =
               match int_of_string_opt id with Some v -> v | None -> fail ()
             in
             let ints =
               List.map
                 (fun t ->
                   match int_of_string_opt t with
                   | Some v -> v
                   | None -> fail ())
                 rest
             in
             (* <lits> 0 <hints> 0 *)
             let rec split_lits acc = function
               | 0 :: rest -> (List.rev acc, rest)
               | l :: rest -> split_lits (l :: acc) rest
               | [] -> fail ()
             in
             let lits, rest = split_lits [] ints in
             let rec split_hints acc = function
               | [ 0 ] -> List.rev acc
               | h :: rest -> split_hints (h :: acc) rest
               | [] -> fail ()
             in
             let hints = split_hints [] rest in
             lines :=
               {
                 id;
                 lits = Clause.of_list (List.map Lit.of_dimacs lits);
                 hints;
               }
               :: !lines)
           | [] -> ()
         end);
  List.rev !lines

let parse_lrat_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_lrat (In_channel.input_all ic))

(* ------------------------------------------------------------------ *)
(* Convenience                                                         *)
(* ------------------------------------------------------------------ *)

let solve_certified ?(config = Types.default) formula =
  let config = { config with Types.proof_logging = true } in
  let solver = Cdcl.create ~config formula in
  let outcome = Cdcl.solve solver in
  (outcome, check formula (Cdcl.proof solver))
