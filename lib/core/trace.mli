(** Structured event log for solver runs.

    A {!sink} is an in-memory, capacity-bounded buffer of timestamped
    {!record}s.  The solver family emits events into an optionally
    attached sink ([Cdcl.set_tracer], [Portfolio.options.trace], the
    CLI tools' [--trace FILE.jsonl]); with no sink attached the
    instrumentation reduces to one option check per site — the
    "zero-cost when disabled" contract measured by experiment E25.

    Under the portfolio each worker writes its own sink (tagged with
    its worker id); {!merged} interleaves them into a single stream
    that is monotone in time and, because per-sink timestamps are
    non-decreasing ({!Monotime}), preserves each worker's emission
    order.  The JSONL encoding is documented in [docs/METRICS.md]. *)

val schema_version : int
val schema_name : string
(** ["satreda-trace"], the header-line discriminator. *)

(** One solver event.  Literals are in DIMACS convention in the JSON
    encoding. *)
type event =
  | Solve_begin of { query : int }
      (** a top-level [solve] entry; [query] numbers calls on the same
          solver/session *)
  | Solve_end of { query : int; outcome : string }
      (** see {!outcome_label} for the outcome strings *)
  | Phase_begin of string  (** pipeline phase, e.g. ["preprocess"] *)
  | Phase_end of string
  | Decision of { level : int; lit : Cnf.Lit.t }
  | Propagation of { props : int; trail : int }
      (** one [Deduce()] batch: [props] implications appended, [trail]
          the resulting trail depth.  Emitted only when [props > 0]. *)
  | Conflict of { level : int; trail : int }
  | Learn of { lbd : int; size : int }
  | Restart of { number : int }
  | Reduce_db of { before : int; after : int }
      (** learned-clause database reduction, live counts *)
  | Import of { lbd : int; size : int }  (** foreign clause accepted *)
  | Export of { lbd : int; size : int }  (** learned clause shared *)
  | Cube_emit of { depth : int; size : int }
      (** lookahead emitted a cube (cube-and-conquer) *)
  | Cube_solve of { size : int; outcome : string }
      (** a conquer worker finished one cube *)
  | Cube_split of { size : int }
      (** a cube exceeded its conflict budget and was split in two *)

type record = {
  worker : int;  (** 0 for sequential runs; portfolio worker id else *)
  seq : int;     (** per-worker emission counter, dense from 0 *)
  time_s : float;  (** seconds since process start ({!Monotime}) *)
  event : event;
}

val outcome_label : Types.outcome -> string
(** ["sat"], ["unsat"], ["unsat-assuming"], or ["unknown:<reason>"]. *)

type sink

val default_capacity : int
(** 1,000,000 records (≈ tens of MB); beyond it events are counted as
    {!dropped} rather than stored. *)

val make_sink : ?worker:int -> ?capacity:int -> unit -> sink

val emit : sink -> event -> unit
(** Stamp the event with the sink's worker id, next sequence number and
    the current time, and buffer it (or count it dropped at capacity). *)

val records : sink -> record array
(** Buffered records in emission order. *)

val length : sink -> int
val dropped : sink -> int
val worker : sink -> int

val absorb : into:sink -> sink -> unit
(** Append [src]'s records (keeping their worker/seq/time stamps) and
    add its drop count.  Used by the portfolio to fold worker sinks
    into the caller's sink. *)

val merged : sink list -> record array
(** All records across the sinks, sorted by timestamp; ties keep the
    order of the sink list.  Each worker's subsequence stays in
    emission order. *)

val record_to_json : record -> Json.t
val header : ?tool:string -> dropped:int -> unit -> Json.t

val write_file : ?tool:string -> sink list -> string -> unit
(** JSONL: one header line ([schema]/[version]/[tool]/[dropped]), then
    one line per record of {!merged}. *)
