(** Unified solving front-end: preprocessing pipeline + engine choice +
    model reconstruction.

    This is the paper's overall recipe — [Preprocess()] followed by
    backtrack search — packaged so applications and experiments choose
    techniques declaratively. *)

type engine =
  | Cdcl of Types.config
  | Dpll of Types.config
  | Walksat of Local_search.config
  | Portfolio of Portfolio.options
      (** diversified parallel portfolio with clause sharing
          ({!module:Portfolio}); [solver_stats] aggregates all workers *)
  | Cube_conquer of Conquer.options
      (** lookahead cube generation + work-stealing conquer workers
          ({!module:Cube}, {!module:Conquer}); [solver_stats] aggregates
          the generator and all workers *)

type pipeline = {
  preprocess : bool;           (** unit/pure/subsumption/strengthening *)
  elim : bool;
      (** bounded variable elimination inside the preprocess stage
          ({!Preprocess.run}'s [elim]).  Fully compatible with proof
          logging: under a proof-producing engine the preprocessor
          emits each elimination's resolvent additions and clause
          deletions into the DRAT stream (see {!module:Preprocess} and
          {!module:Proof}), so the fastest configuration is also a
          certifiable one. *)
  probe_failed_literals : bool;
  equivalence : bool;          (** equivalency reasoning (Sec. 6) *)
  recursive_learning : int;    (** recursion depth; 0 disables (Sec. 4.2) *)
}

val no_pipeline : pipeline

val full_pipeline : pipeline
(** Everything on ([elim] included), probing off. *)

type report = {
  outcome : Types.outcome;
  solver_stats : Types.stats option;  (** absent for local search *)
  preprocess_stats : Preprocess.stats option;
  equivalence_merged : int;
  recursive_learning_implicates : int;
  proof : Types.proof_step list option;
      (** the combined DRAT stream — preprocessing steps followed by
          engine steps — refuting/deriving over the {e original}
          formula.  Present iff the engine is proof-producing: a
          sequential [Cdcl] configuration with
          [Types.config.proof_logging] on (portfolio and
          cube-and-conquer workers import foreign clauses their proofs
          cannot justify).  When preprocessing itself refutes the
          formula the stream ends with the empty clause.  Feed it to
          {!Proof.check} or {!Proof.trim}. *)
  time_seconds : float;
}

val solve :
  ?metrics:Metrics.t ->
  ?trace:Trace.sink ->
  ?engine:engine ->
  ?pipeline:pipeline ->
  Cnf.Formula.t ->
  report
(** Models returned in [outcome] are models of the {e original}
    formula.

    With a proof-producing engine (see {!report.proof}) the
    preprocessor runs with a DRAT sink (and [pures] off — pure-literal
    fixes are not RUP), and the equivalence-reasoning and
    recursive-learning stages are skipped: they rewrite the formula
    without emitting certifiable steps, and a proof must refute the
    formula the caller actually supplied.

    With [metrics], each enabled pipeline stage is timed under
    [pipeline/preprocess] / [pipeline/equivalence] /
    [pipeline/recursive_learning], the engine run under [solve], and
    the engine's statistics and search-shape histograms land in the
    registry (for the portfolio engine, merged across workers).  The
    preprocess stage additionally emits [preprocess/*] counters —
    [units], [pures], [subsumed], [strengthened], [failed_literals],
    [vars_eliminated], [clauses_removed] — and a Cdcl engine with
    [Types.config.inprocessing] emits [inprocess/*] counters plus a
    ["simplify"] phase span per pass (see {!Cdcl.set_metrics}).  With
    [trace], the same spans appear as [phase-begin]/[phase-end] events
    around the solver's own event stream.  A [Portfolio] engine whose
    options already carry a registry or sink keeps its own. *)

val solve_dimacs :
  ?metrics:Metrics.t ->
  ?trace:Trace.sink ->
  ?engine:engine ->
  ?pipeline:pipeline ->
  string ->
  report
(** Convenience: parse DIMACS text and solve. *)

(** Incremental front-end: run the simplification pipeline {e once},
    then serve many queries from one {!Session.t}, with per-query model
    lifting back to the original variable space.

    The pipeline is adapted for a formula that keeps growing:
    pure-literal elimination is disabled (its fixes are not implied, so
    they could contradict later clauses), bounded variable elimination
    is disabled (later clauses may constrain {e any} original variable,
    and an eliminated variable no longer exists in the simplified
    formula — the only safe frozen set would be every variable), while
    unit and failed-literal fixes are re-asserted inside the session.
    Callers who know which variables future clauses can mention may use
    {!Preprocess.run} with [frozen] directly instead.  Clauses and assumptions
    supplied later are rewritten through the equivalence substitution
    before reaching the solver, and satisfying models are completed per
    query.  Note [Unsat_assuming] cores are reported over the
    {e substituted} literals; activation literals (fresh variables) are
    never substituted. *)
module Incremental : sig
  type t

  val open_session :
    ?metrics:Metrics.t ->
    ?trace:Trace.sink ->
    ?config:Types.config ->
    ?pipeline:pipeline ->
    ?retention:Session.retention ->
    Cnf.Formula.t ->
    t
  (** Simplify once and open the session (default pipeline:
      {!full_pipeline}).  If simplification already refutes the formula,
      every later query returns [Unsat].  [metrics] / [trace] are
      attached to the session ({!Session.attach_metrics} /
      {!Session.set_tracer}), so every query contributes its per-query
      delta and trace span. *)

  val session : t -> Session.t
  (** The underlying session (e.g. for retention tuning). *)

  val new_var : t -> int
  val add_clause : t -> Cnf.Lit.t list -> unit
  val new_activation : t -> Cnf.Lit.t
  val add_clause_in : t -> group:Cnf.Lit.t -> Cnf.Lit.t list -> unit
  val release : t -> Cnf.Lit.t -> unit

  val solve :
    ?assumptions:Cnf.Lit.t list ->
    ?max_conflicts:int ->
    ?max_decisions:int ->
    t ->
    Types.outcome
  (** Models are models of the {e original} formula. *)

  val last_stats : t -> Types.stats
  val cumulative_stats : t -> Types.stats
  val queries : t -> int
  val preprocess_stats : t -> Preprocess.stats option
  val equivalence_merged : t -> int
  val recursive_learning_implicates : t -> int
end

(** Auto-tuned front-end: measure the instance with {!Autotune.extract},
    pick engine / preprocessing level / restart schedule / guidance from
    the published decision table ({!Autotune.select}, [docs/TUNING.md]),
    then run the ordinary {!solve} with the chosen recipe.  The plan is
    inspectable — [satsolve --explain-tuning] prints it — and tuning
    never changes answers, so auto-tuned verdicts validate and certify
    exactly like hand-configured ones. *)
module Auto : sig
  type plan = {
    features : Autotune.features;
    policy : Autotune.policy;
    guidance : Types.guidance option;
        (** present iff the policy asked for guidance ([G1]) and
            {!Guide.of_formula} produced a non-empty seeding; already
            attached to the engine's configuration *)
    engine : engine;
    pipeline : pipeline;
  }

  val plan :
    ?jobs:int -> ?probes:int -> ?config:Types.config -> Cnf.Formula.t -> plan
  (** Extract features (with [probes] lookahead probes, default 32) and
      apply the decision table at parallelism [jobs] (default 1).
      [config] supplies the fields the policy does not set (seed,
      deletion, budgets, proof logging, ...). *)

  val solve_plan :
    ?metrics:Metrics.t -> ?trace:Trace.sink -> plan -> Cnf.Formula.t -> report
  (** Run a previously computed plan.  With [metrics], first records
      the [autotune/*] and [guide/*] instruments. *)

  val solve :
    ?metrics:Metrics.t ->
    ?trace:Trace.sink ->
    ?jobs:int ->
    ?probes:int ->
    ?config:Types.config ->
    Cnf.Formula.t ->
    plan * report
  (** [plan] followed by [solve_plan]. *)
end
