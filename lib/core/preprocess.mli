(** CNF preprocessing — the [Preprocess()] step of Figure 2.

    Passes: unit propagation, pure-literal elimination, clause
    subsumption, self-subsuming resolution (clause strengthening),
    SatELite-style bounded variable elimination, and optional
    failed-literal probing.  Variable numbering is preserved; variables
    the preprocessor decides are recorded in {!simplified.fix}, and
    variables it {e eliminates by resolution} are recorded on the
    {!simplified.elim} stack that {!complete_model} replays.

    {2 Bounded variable elimination}

    A variable [v] is eliminated by replacing the clauses containing it
    with all non-tautological resolvents on [v] (Davis–Putnam
    resolution), {e bounded} so the clause database never grows: the
    elimination is committed only when the resolvent set is no larger
    than the set of clauses removed, no resolvent exceeds
    [elim_clause_cap] literals, and neither polarity of [v] occurs more
    than [elim_occ_cap] times.  Backward subsumption and self-subsuming
    resolution run interleaved on a queue of touched (freshly inserted)
    clauses, so resolvents are immediately simplified against the rest
    of the database.

    When [v] is the output of an AND/OR-shaped gate — one clause
    [(v ∨ m₁ ∨ … ∨ mₖ)] with a matching binary [(¬v ∨ ¬mᵢ)] for every
    [mᵢ] (or the mirror image on [¬v]) — elimination switches to
    {e definition substitution}: only gate × non-gate resolvents are
    generated, because non-gate × non-gate resolvents are implied by
    them.  Tseitin-encoded netlists consist almost entirely of such
    definitions, so substitution is what lets fanout gate variables be
    eliminated where the full resolvent product would blow the bound.

    Elimination is satisfiability-preserving but not model-preserving:
    a model of the simplified formula says nothing about an eliminated
    variable.  {!complete_model} therefore replays the elimination
    stack newest-first, choosing each eliminated variable's value so
    that every clause removed on its behalf is satisfied.

    {2 Proof emission}

    Every pass can certify its work: pass a [?proof] sink to [run] and
    the preprocessor emits a DRAT step stream — resolvent and
    strengthened-clause additions (each reverse-unit-propagation
    derivable from the clauses active when it appears) interleaved with
    deletions of the clauses each pass removes, ending with the empty
    clause when preprocessing itself refutes the formula.  Bounded
    variable elimination is fully covered: each commit adds all
    resolvents while both parent sides are still active, then deletes
    the parent clauses.  Only pure-literal fixes are outside the RUP
    fragment (they are blocked-clause-style RAT steps), so [run]
    rejects [pures:true] combined with [?proof]; with a sink installed
    [pures] simply defaults to [false].  See {!module:Proof} and
    [docs/PROOFS.md] for the contract. *)

type stats = {
  mutable units : int;
  mutable pures : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable failed_literals : int;
  mutable eliminated : int;  (** variables removed by bounded elimination *)
  mutable elim_clauses_removed : int;
      (** clauses deleted by bounded elimination (the resolvents that
          replace them are counted in [elim_resolvents]) *)
  mutable elim_resolvents : int;
      (** resolvent clauses inserted by bounded elimination *)
  mutable rounds : int;
}

type elimination = {
  evar : int;  (** the eliminated variable *)
  pos : Cnf.Clause.t list;
      (** clauses containing [evar] positively at elimination time *)
  neg : Cnf.Clause.t list;
      (** clauses containing [evar] negatively at elimination time *)
}
(** One frame of the elimination stack: everything {!complete_model}
    needs to reconstruct a value for [evar]. *)

type simplified = {
  formula : Cnf.Formula.t;
      (** simplified clause set over the same variables *)
  fix : (int * bool) list;
      (** values for variables the preprocessor decided (units, pures,
          failed literals) *)
  elim : elimination list;
      (** elimination stack, newest first — replayed by
          {!complete_model} in exactly this order *)
  stats : stats;
}

type result = Unsat | Simplified of simplified

val run :
  ?subsumption:bool ->
  ?strengthen:bool ->
  ?pures:bool ->
  ?probe_failed_literals:bool ->
  ?elim:bool ->
  ?frozen:int list ->
  ?elim_clause_cap:int ->
  ?elim_occ_cap:int ->
  ?proof:(Types.proof_step -> unit) ->
  Cnf.Formula.t ->
  result
(** Defaults: subsumption, strengthening, pure literals and bounded
    variable elimination on; probing off; [frozen = []];
    [elim_clause_cap = 8] (longest resolvent committed — long resolvents
    also make poor watch-list citizens, so the cap is deliberately
    tighter than the subsumption limits);
    [elim_occ_cap = 10] (most occurrences per polarity of an
    elimination candidate).

    [frozen] lists variables bounded elimination must not touch.
    Freeze every variable that later clauses or assumptions may
    mention: an eliminated variable no longer occurs in the simplified
    formula, so constraining it afterwards would be silently
    meaningless.  [Sat.Session] growth variables and incremental
    assumption variables are the canonical frozen set —
    [Solver.Incremental] goes further and disables [elim] entirely
    because its sessions may grow clauses over {e any} original
    variable.

    Disable [pures] when the formula will be extended later
    (incremental sessions): unlike units and failed literals, a pure
    literal's fixed value is merely satisfiability-preserving, not
    implied, so it must not be baked into a formula that can still
    grow.

    [proof] receives every DRAT step the passes emit, in order (see the
    proof-emission section above).  With [proof] set, [pures] defaults
    to [false] and passing [pures:true] raises [Invalid_argument].
    When [run] returns [Unsat] the emitted stream ends with the empty
    clause and is a complete, self-contained refutation of the input
    formula. *)

val complete_model : simplified -> bool array -> bool array
(** Extends a model of the simplified formula to a model of the
    original: applies {!simplified.fix}, then replays the elimination
    stack newest-first, setting each eliminated variable to satisfy
    the clauses that were removed on its behalf.  The input array is
    not mutated; the result is grown if the stack mentions variables
    past its end. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering of every counter, including
    [vars_eliminated]/[clauses_removed]/[resolvents_added] from
    bounded elimination. *)
