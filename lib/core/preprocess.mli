(** CNF preprocessing — the [Preprocess()] step of Figure 2.

    Passes: unit propagation, pure-literal elimination, clause
    subsumption, self-subsuming resolution (clause strengthening), and
    optional failed-literal probing.  Variable numbering is preserved;
    eliminated variables are recorded with the value that any model must
    (or may safely) give them. *)

type stats = {
  mutable units : int;
  mutable pures : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable failed_literals : int;
  mutable rounds : int;
}

type simplified = {
  formula : Cnf.Formula.t;
      (** simplified clause set over the same variables *)
  fix : (int * bool) list;
      (** values for variables the preprocessor decided (units, pures,
          failed literals) *)
  stats : stats;
}

type result = Unsat | Simplified of simplified

val run :
  ?subsumption:bool ->
  ?strengthen:bool ->
  ?pures:bool ->
  ?probe_failed_literals:bool ->
  Cnf.Formula.t ->
  result
(** Defaults: subsumption, strengthening and pure literals on, probing
    off.  Disable [pures] when the formula will be extended later
    (incremental sessions): unlike units and failed literals, a pure
    literal's fixed value is merely satisfiability-preserving, not
    implied, so it must not be baked into a formula that can still
    grow. *)

val complete_model : simplified -> bool array -> bool array
(** Patches a model of the simplified formula into a model of the
    original. *)
