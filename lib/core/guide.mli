(** Structure-derived branching guidance.

    Producers that turn instance structure — circuit simulation signal
    probabilities with fanout, or Jeroslow-Wang literal weights over
    the raw CNF — into a {!Types.guidance} value: initial VSIDS
    activities and saved phases a solver starts from instead of zero.

    Guidance is purely heuristic.  It never changes a solver's answer,
    only the order the search explores the space, so every guided
    verdict is validated or certified exactly like an unguided one.

    The formulas are a published, reimplementable contract; see
    [docs/TUNING.md] ("Guidance seeding rules").  [test/test_guide.ml]
    pins them. *)

type t = Types.guidance

type observation = {
  var : int;  (** solver variable carrying the observed signal *)
  prob : float;  (** simulated signal probability in [0, 1] *)
  fanout : int;  (** fanout of the node the variable encodes *)
}

val empty : t

val is_empty : t -> bool

val nseeded : t -> int
(** Number of distinct variables carrying an activity or phase seed. *)

val of_observations : observation list -> t
(** Simulation-derived seeds:
    [phase v = prob >= 0.5] and
    [activity v = (0.5 + 0.5 * fanout/fmax) * (1 - |2*prob - 1|)]
    where [fmax] is the largest fanout observed (at least 1).
    Activities lie in [[0, 1]]: maximal for a high-fanout signal whose
    simulated probability is 0.5 (simulation could not settle it),
    zero for a signal stuck at 0 or 1. *)

val of_formula : Cnf.Formula.t -> t
(** CNF-derived seeds from Jeroslow-Wang literal weights
    [w(l) = sum over clauses c containing l of 2^-|c|]:
    [activity v = (w(+v) + w(-v)) / maxw] (normalized by the largest
    per-variable weight) and [phase v = w(+v) >= w(-v)].  Variables
    with zero weight (unused) are not seeded. *)

val apply_config : t -> Types.config -> Types.config
(** Attach the guidance to a solver configuration ([guide] field);
    returns the configuration unchanged when the guidance is empty. *)

val emit_metrics : Metrics.t -> t -> unit
(** Bump [guide/seeded_vars] by {!nseeded} and [guide/applications]
    by one. *)
