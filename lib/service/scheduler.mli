(** Query scheduler: a bounded domain pool fed by a bounded work queue,
    with admission control, per-query budgets, cooperative cancellation
    and per-tenant metrics rollup.

    This is the daemon's engine room, usable without any socket in
    front of it (the benchmarks and tests drive it directly):

    - {!submit} either queues the query or refuses it immediately —
      [Overloaded] when the queue is at capacity (backpressure),
      [Draining] once shutdown has begun;
    - each worker domain serves queries through the {!Cache}: an exact
      repeat answers from the result cache, a grown query checks out
      the warm session holding its longest pooled prefix, anything
      else solves cold — and every session returns to the pool
      afterwards, including after an interrupt (nothing leaks);
    - {!cancel} marks a queued query dead or interrupts a running one
      ({!Sat.Session.interrupt}, safe cross-domain); {!tick} interrupts
      running queries whose wall-clock deadline has passed;
    - per-query solver metrics accumulate into a per-tenant
      {!Sat.Metrics} registry via the existing {!Sat.Metrics.merge_into},
      exposed by {!stats_json} (the [stats] verb payload). *)

type t

type answer = {
  outcome : Sat.Types.outcome;
  cached : bool;
  warm : bool;
  matched_prefix : int;
  time_s : float;
  conflicts : int;
  decisions : int;
}

type job
type submit_error = Overloaded | Draining

(** Cube-and-conquer decomposition policy for oversized queries.  A
    query with at least [threshold_clauses] clauses, no assumptions and
    no budget (neither its own nor a server cap) bypasses the
    warm-session pool and is decomposed by {!Sat.Conquer} across
    [decompose_jobs] worker domains ([depth] lookahead decisions per
    cube, [cutoff] conflicts before a cube splits dynamically).
    Budgeted or assumption-carrying queries keep the exact semantics of
    the incremental path.  Results still land in the result cache;
    cancellation and deadlines stop the decomposed run cooperatively. *)
type decompose = {
  threshold_clauses : int;
  decompose_jobs : int;
  depth : int;
  cutoff : int;
}

val create :
  ?jobs:int ->
  ?max_queue:int ->
  ?max_conflicts_cap:int ->
  ?decompose:decompose ->
  ?autotune:bool ->
  ?cache:Cache.t ->
  unit ->
  t
(** Spawns the worker domains.  Defaults: [jobs] =
    [Domain.recommended_domain_count () - 1] (at least 1), [max_queue]
    = 128 pending queries, no conflict cap, no decomposition, a fresh
    default {!Cache.create}.  [max_conflicts_cap] bounds every query's
    conflict budget (applied on top of the query's own, whichever is
    smaller) — the admission-control backstop against a tenant
    submitting unbounded work.

    With [autotune] (default off), each {e cold, unbudgeted} query is
    measured with {!Sat.Autotune.extract} and its fresh session gets
    the restart schedule, inprocessing switch and optional
    {!Sat.Guide.of_formula} seeding the decision table picks at jobs=1
    (docs/TUNING.md; the engine dimension stays the scheduler's own).
    Warm pool hits keep their configuration — carried-over solver
    state is the whole point of the pool — and budgeted queries keep
    exact budget semantics untouched.  The [autotuned] counter in
    {!stats_json} counts tuned queries. *)

val submit :
  t ->
  ?deadline:float ->
  on_done:(answer -> unit) ->
  Protocol.solve_params ->
  (job, submit_error) result
(** Queues a query.  [on_done] runs in the worker domain that served
    it (callers bridge to their own thread; the socket server pushes
    to a completion queue).  [deadline] is an absolute
    {!Sat.Monotime.now_s} instant enforced by {!tick}. *)

val cancel : t -> job -> unit
(** Cancels a queued or running query.  Queued: it answers
    [Unknown "cancelled"] without solving.  Running: the session is
    interrupted; the query answers [Unknown "cancelled"] and the
    session survives into the pool. *)

val solve : t -> Protocol.solve_params -> (answer, submit_error) result
(** Blocking convenience over {!submit} — the in-process client used
    by benchmarks and tests. *)

val tick : t -> unit
(** Interrupts running queries whose deadline has passed (they answer
    [Unknown "timeout"]).  The socket server calls this once per event
    loop turn; queued queries past their deadline are refused when a
    worker picks them up. *)

val queue_depth : t -> int
val inflight : t -> int
val jobs : t -> int
val cache : t -> Cache.t

val set_draining : t -> unit
(** Stop admitting new queries ({!submit} answers [Draining]);
    already-queued and running queries complete normally. *)

val draining : t -> bool

val quiescent : t -> bool
(** No queued and no running queries. *)

val drain : t -> unit
(** {!set_draining} then block until {!quiescent}. *)

val shutdown : t -> unit
(** {!drain}, then stop and join the worker domains.  The scheduler
    must not be used afterwards. *)

val stats_json : t -> Sat.Json.t
(** The [stats]-verb payload: service counters (queries, cancellations,
    timeouts, refusals, decomposed runs, queue depth high-water),
    {!Cache.stats_json}, and one merged {!Sat.Metrics.to_json} snapshot
    per tenant. *)
