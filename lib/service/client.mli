(** Blocking [satd] client: connects, frames requests, reads replies.

    One connection, synchronous request/reply usage (the [satc] CLI and
    the tests).  The protocol itself allows pipelining — callers that
    want it can {!send} several requests and then {!recv} the replies
    in completion order, matching them up by [r_id]. *)

type t

val connect_unix : string -> t
(** Connects to a Unix-domain socket path.  Raises [Unix.Unix_error]. *)

val connect_tcp : string -> int -> t
(** Connects to [host, port].  Raises [Unix.Unix_error] /
    [Not_found] (unresolvable host). *)

val close : t -> unit

val send : t -> Sat.Json.t -> unit
(** Writes one request frame.  Raises on a broken connection. *)

val send_raw : t -> string -> unit
(** Writes bytes verbatim (no framing added) — for tests that must put
    malformed frames on the wire. *)

val recv : t -> (Protocol.reply, string) result
(** Reads the next reply frame (blocking).  [Error] on a malformed
    frame or a closed connection. *)

val rpc : t -> Sat.Json.t -> (Protocol.reply, string) result
(** {!send} then {!recv} — the synchronous common case. *)

(** {1 Convenience verbs}

    Each performs one {!rpc} with a fresh request id. *)

val solve : t -> Protocol.solve_params -> (Protocol.reply, string) result
val ping : t -> (Protocol.reply, string) result
val stats : t -> (Protocol.reply, string) result
val shutdown : t -> (Protocol.reply, string) result
(** Blocks until the daemon has drained and acknowledged. *)
