(* Chain hashing of clause sequences.  See fhash.mli for the contract. *)

type t = int64

(* splitmix64 finalizer: a cheap high-quality int -> int64 mix *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* one FNV-1a step absorbing a full 64-bit word *)
let absorb h w = Int64.mul (Int64.logxor h w) fnv_prime

let empty = fnv_offset

let clause lits =
  (* canonical: sorted, deduped DIMACS literals *)
  let lits = List.sort_uniq compare lits in
  List.fold_left
    (fun h l -> absorb h (mix64 (Int64.of_int l)))
    0x9e3779b97f4a7c15L lits

let extend h c = absorb h (clause c)

let prefix_hashes cs =
  let n = List.length cs in
  let out = Array.make (n + 1) empty in
  List.iteri (fun i c -> out.(i + 1) <- extend out.(i) c) cs;
  out

let full cs = List.fold_left extend empty cs

let to_hex h = Printf.sprintf "%016Lx" h
