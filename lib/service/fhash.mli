(** Canonical formula hashing for the service cache.

    EDA query streams are highly redundant: the same miter is checked
    after every trivial edit, a BMC run re-sends the bound-[k] unrolling
    that is the bound-[k-1] unrolling plus one frame.  The cache keys
    both patterns with one device — a {e chain hash} over the clause
    sequence:

    - each clause hashes {e canonically} (literals sorted and deduped,
      so [x ∨ y] and [y ∨ x] collide on purpose);
    - the formula hash folds clause hashes {e in order}, and every
      prefix of the sequence has its own hash ({!prefix_hashes}).

    Equal chain hashes therefore identify an exact repeat (full hash)
    or an incremental extension (some prefix hash), which is exactly
    the distinction the cache needs: serve the result, or check out the
    warm session and grow it.  Hashes are 64-bit (FNV-1a over a
    splitmix-finalized literal mix); collisions are ruled out in the
    cache by additionally comparing clause counts, and are otherwise
    accepted at the usual 2^-64 risk. *)

type t = int64

val empty : t
(** Hash of the zero-clause formula (the chain basis). *)

val clause : int list -> t
(** Canonical hash of one clause given as DIMACS literals: order- and
    duplicate-insensitive within the clause. *)

val extend : t -> int list -> t
(** [extend h c] is the chain hash of a clause sequence with prefix
    hash [h] followed by clause [c] (order-sensitive across clauses). *)

val prefix_hashes : int list list -> t array
(** [prefix_hashes cs] has length [List.length cs + 1]; element [i] is
    the chain hash of the first [i] clauses ([element 0 = empty]). *)

val full : int list list -> t
(** The chain hash of the whole sequence (last element of
    {!prefix_hashes}, without materializing the array). *)

val to_hex : t -> string
(** 16-digit lowercase hex rendering, for cache keys and logs. *)
