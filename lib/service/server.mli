(** The [satd] socket server: one event-loop domain multiplexing many
    clients onto a {!Scheduler}.

    Connection handling is a classic readiness loop ([Unix.select]) —
    no thread per client:

    - client sockets are non-blocking; input accumulates in a per-client
      buffer and is cut into newline-terminated frames
      ({!Sat.Json.parse_line} strictness), replies queue per client and
      drain as the socket accepts them;
    - a malformed frame earns an [error] reply and the connection
      {e survives} (line framing re-synchronizes at the next newline);
      an over-long frame ({!config.max_frame}) closes the connection —
      there is no way to resynchronize inside an unbounded line;
    - a client disconnect cancels all its in-flight queries
      ({!Scheduler.cancel} — a worker mid-solve is cooperatively
      interrupted and its session returns to the pool);
    - workers hand finished answers to a completion queue and wake the
      loop through a self-pipe; the loop writes the replies out;
    - per-query deadlines are enforced by {!Scheduler.tick} once per
      loop turn;
    - a [shutdown] request (or {!stop}, typically from a signal
      handler) stops admission, lets in-flight work drain, answers the
      shutdown requester(s), then exits {!run}. *)

type config = {
  unix_path : string option;  (** listen on a Unix-domain socket path *)
  tcp : (string * int) option;  (** listen on [host, port] *)
  jobs : int;  (** worker domains ({!Scheduler.create}) *)
  max_queue : int;  (** admission-control queue bound *)
  max_frame : int;  (** bytes; longer frames close the connection *)
  max_conflicts_cap : int option;  (** server-wide per-query budget cap *)
  cube_threshold : int option;
      (** decompose unbudgeted assumption-free queries with at least
          this many clauses by cube-and-conquer ({!Scheduler.decompose});
          [None] disables decomposition *)
  autotune : bool;
      (** tune each cold unbudgeted query's restarts, inprocessing and
          guidance per the docs/TUNING.md decision table
          ({!Scheduler.create}) *)
  max_results : int;  (** result-cache capacity *)
  max_sessions : int;  (** warm-session-pool capacity *)
  verbose : bool;  (** connection/query logging on [stderr] *)
}

val default_config : config
(** No listeners (callers must set at least one), [jobs] =
    recommended domains - 1, queue 128, 16 MiB frames, no conflict
    cap, cache 4096/64, quiet. *)

type t

val create : config -> t
(** Binds the listeners and spawns the scheduler.  Raises
    [Invalid_argument] if no listener is configured; [Unix.Unix_error]
    if binding fails.  A stale Unix-socket path is unlinked first. *)

val scheduler : t -> Scheduler.t

val run : t -> unit
(** Serves until a [shutdown] request or {!stop}.  Returns after
    in-flight work has drained, replies are flushed, sockets are closed
    and the worker domains are joined. *)

val stop : t -> unit
(** Requests graceful shutdown from another domain or a signal handler
    (async-signal-safe: sets an atomic flag the loop polls). *)
