(* Event-loop socket server.  See server.mli for the contract. *)

module J = Sat.Json

type config = {
  unix_path : string option;
  tcp : (string * int) option;
  jobs : int;
  max_queue : int;
  max_frame : int;
  max_conflicts_cap : int option;
  cube_threshold : int option;
  autotune : bool;
  max_results : int;
  max_sessions : int;
  verbose : bool;
}

let default_config =
  {
    unix_path = None;
    tcp = None;
    jobs = max 1 (Domain.recommended_domain_count () - 1);
    max_queue = 128;
    max_frame = 16 * 1024 * 1024;
    max_conflicts_cap = None;
    cube_threshold = None;
    autotune = false;
    max_results = 4096;
    max_sessions = 64;
    verbose = false;
  }

(* --- growable input byte queue with newline scanning ---------------------- *)

module Bq = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;  (* first live byte *)
    mutable len : int;  (* live bytes *)
    mutable scanned : int;  (* bytes (from start) already newline-scanned *)
  }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0; scanned = 0 }
  let length t = t.len

  let add t src n =
    if t.start + t.len + n > Bytes.length t.buf then begin
      (* compact, growing if the live data + new data still don't fit *)
      let need = t.len + n in
      let cap = max (Bytes.length t.buf) 64 in
      let cap = if need > cap then max need (2 * cap) else cap in
      let fresh = if cap > Bytes.length t.buf then Bytes.create cap else t.buf in
      Bytes.blit t.buf t.start fresh 0 t.len;
      t.buf <- fresh;
      t.start <- 0
    end;
    Bytes.blit src 0 t.buf (t.start + t.len) n;
    t.len <- t.len + n

  (* next complete line, without its '\n' *)
  let take_line t =
    let rec scan i =
      if i >= t.len then begin
        t.scanned <- t.len;
        None
      end
      else if Bytes.get t.buf (t.start + i) = '\n' then begin
        let line = Bytes.sub_string t.buf t.start i in
        t.start <- t.start + i + 1;
        t.len <- t.len - i - 1;
        t.scanned <- 0;
        Some line
      end
      else scan (i + 1)
    in
    scan t.scanned
end

(* --- client state --------------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  cid : int;
  peer : string;
  inq : Bq.t;
  outq : string Queue.t;  (* frames (with trailing '\n') awaiting write *)
  mutable out_off : int;  (* bytes of the head frame already written *)
  pending : (string, Scheduler.job) Hashtbl.t;  (* qid -> in-flight job *)
}

type t = {
  cfg : config;
  sched : Scheduler.t;
  listeners : Unix.file_descr list;
  unix_path : string option;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  clients : (int, client) Hashtbl.t;
  completions_lock : Mutex.t;
  completions : (int * string * string) Queue.t;  (* cid, qid, frame *)
  stop_requested : bool Atomic.t;
  mutable next_cid : int;
  mutable shutdown_waiters : (int * string) list;  (* cid, request id *)
  mutable draining : bool;
  (* connection counters for the stats verb *)
  mutable accepted : int;
  mutable malformed : int;
}

let log t fmt =
  if t.cfg.verbose then
    Printf.ksprintf (fun m -> Printf.eprintf "satd: %s\n%!" m) fmt
  else Printf.ksprintf ignore fmt

(* --- lifecycle ------------------------------------------------------------ *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let create (cfg : config) =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Server.create: no listener configured";
  (* a client that vanishes mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listeners =
    (match cfg.unix_path with Some p -> [ listen_unix p ] | None -> [])
    @ (match cfg.tcp with
       | Some (h, p) -> [ listen_tcp h p ]
       | None -> [])
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let cache =
    Cache.create ~max_results:cfg.max_results ~max_sessions:cfg.max_sessions
      ()
  in
  {
    cfg;
    sched =
      Scheduler.create ~jobs:cfg.jobs ~max_queue:cfg.max_queue
        ?max_conflicts_cap:cfg.max_conflicts_cap
        ?decompose:
          (Option.map
             (fun n ->
                { Scheduler.threshold_clauses = n;
                  decompose_jobs = max 2 cfg.jobs;
                  depth = Sat.Cube.default_options.Sat.Cube.depth;
                  cutoff = 10_000 })
             cfg.cube_threshold)
        ~autotune:cfg.autotune ~cache ();
    listeners;
    unix_path = cfg.unix_path;
    wake_r;
    wake_w;
    clients = Hashtbl.create 64;
    completions_lock = Mutex.create ();
    completions = Queue.create ();
    stop_requested = Atomic.make false;
    next_cid = 0;
    shutdown_waiters = [];
    draining = false;
    accepted = 0;
    malformed = 0;
  }

let scheduler t = t.sched
let stop t = Atomic.set t.stop_requested true

(* --- output --------------------------------------------------------------- *)

let enqueue_frame client json =
  Queue.add (J.to_string json ^ "\n") client.outq

let wake t =
  (* full pipe = a wake is already pending; that is all we need *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* try to push queued frames out; false when the client must be dropped *)
let flush_client client =
  try
    let progress = ref true in
    while !progress && not (Queue.is_empty client.outq) do
      let head = Queue.peek client.outq in
      let remaining = String.length head - client.out_off in
      let n =
        Unix.write_substring client.fd head client.out_off remaining
      in
      if n = remaining then begin
        ignore (Queue.pop client.outq);
        client.out_off <- 0
      end
      else begin
        client.out_off <- client.out_off + n;
        progress := false
      end
    done;
    true
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

(* --- request dispatch ----------------------------------------------------- *)

let completion_frame t client_id qid frame =
  Mutex.lock t.completions_lock;
  Queue.add (client_id, qid, frame) t.completions;
  Mutex.unlock t.completions_lock;
  wake t

let stats_payload t =
  match Scheduler.stats_json t.sched with
  | J.Obj fields ->
    J.Obj
      (("connections",
        J.Obj
          [
            ("active", J.Int (Hashtbl.length t.clients));
            ("accepted", J.Int t.accepted);
            ("malformed_frames", J.Int t.malformed);
          ])
       :: fields)
  | other -> other

let handle_request t client id req =
  match req with
  | Protocol.Ping -> enqueue_frame client (Protocol.ok_reply ~id ~verb:"ping")
  | Protocol.Stats ->
    enqueue_frame client (Protocol.stats_reply ~id ~data:(stats_payload t))
  | Protocol.Cancel target ->
    (match Hashtbl.find_opt client.pending target with
     | Some job -> Scheduler.cancel t.sched job
     | None -> ());
    enqueue_frame client (Protocol.ok_reply ~id ~verb:"cancel")
  | Protocol.Shutdown ->
    log t "shutdown requested by client %d" client.cid;
    t.draining <- true;
    Scheduler.set_draining t.sched;
    t.shutdown_waiters <- (client.cid, id) :: t.shutdown_waiters
  | Protocol.Solve params ->
    if t.draining then
      enqueue_frame client
        (Protocol.error_reply ~id Protocol.Shutting_down
           "daemon is draining")
    else begin
      let deadline =
        Option.map
          (fun ms -> Sat.Monotime.now_s () +. (float_of_int ms /. 1000.))
          params.Protocol.timeout_ms
      in
      let cid = client.cid in
      let nvars = params.Protocol.nvars in
      let on_done (a : Scheduler.answer) =
        (* worker domain: render the reply here, deliver via the loop *)
        let frame =
          J.to_string
            (Protocol.solve_reply ~id ~nvars
               {
                 Protocol.outcome = a.Scheduler.outcome;
                 cached = a.Scheduler.cached;
                 warm = a.Scheduler.warm;
                 matched_prefix = a.Scheduler.matched_prefix;
                 time_s = a.Scheduler.time_s;
                 conflicts = a.Scheduler.conflicts;
                 decisions = a.Scheduler.decisions;
               })
          ^ "\n"
        in
        completion_frame t cid id frame
      in
      match Scheduler.submit t.sched ?deadline ~on_done params with
      | Ok job -> Hashtbl.replace client.pending id job
      | Error Scheduler.Overloaded ->
        enqueue_frame client
          (Protocol.error_reply ~id Protocol.Overloaded "queue is full")
      | Error Scheduler.Draining ->
        enqueue_frame client
          (Protocol.error_reply ~id Protocol.Shutting_down
             "daemon is draining")
    end

let handle_line t client line =
  if String.trim line <> "" then
    match J.parse_line line with
    | Error e ->
      t.malformed <- t.malformed + 1;
      enqueue_frame client
        (Protocol.error_reply ~id:"" Protocol.Parse_error e)
    | Ok json ->
      (match Protocol.request_of_json json with
       | Error (id, code, msg) ->
         t.malformed <- t.malformed + 1;
         enqueue_frame client (Protocol.error_reply ~id code msg)
       | Ok (id, req) -> handle_request t client id req)

(* --- connection management ------------------------------------------------ *)

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "?"

let accept_client t lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | fd, _ ->
    Unix.set_nonblock fd;
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    t.accepted <- t.accepted + 1;
    let client =
      {
        fd;
        cid;
        peer = peer_string fd;
        inq = Bq.create ();
        outq = Queue.create ();
        out_off = 0;
        pending = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.clients cid client;
    log t "client %d connected (%s)" cid client.peer

let drop_client t client reason =
  log t "client %d dropped (%s, %d in flight)" client.cid reason
    (Hashtbl.length client.pending);
  (* cooperatively cancel everything the client was waiting for *)
  Hashtbl.iter (fun _ job -> Scheduler.cancel t.sched job) client.pending;
  Hashtbl.reset client.pending;
  Hashtbl.remove t.clients client.cid;
  (try Unix.close client.fd with Unix.Unix_error _ -> ())

let read_client t client =
  let chunk = Bytes.create 65536 in
  match Unix.read client.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    drop_client t client "reset"
  | 0 -> drop_client t client "eof"
  | n ->
    Bq.add client.inq chunk n;
    let rec frames () =
      match Bq.take_line client.inq with
      | Some line ->
        if String.length line > t.cfg.max_frame then begin
          t.malformed <- t.malformed + 1;
          enqueue_frame client
            (Protocol.error_reply ~id:"" Protocol.Too_large
               (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame));
          ignore (flush_client client);
          drop_client t client "oversized frame"
        end
        else begin
          handle_line t client line;
          if Hashtbl.mem t.clients client.cid then frames ()
        end
      | None ->
        (* an unterminated line longer than the bound can never become
           a valid frame; cut the connection rather than buffer it *)
        if Bq.length client.inq > t.cfg.max_frame then begin
          t.malformed <- t.malformed + 1;
          enqueue_frame client
            (Protocol.error_reply ~id:"" Protocol.Too_large
               (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame));
          ignore (flush_client client);
          drop_client t client "oversized frame"
        end
    in
    frames ()

let deliver_completions t =
  Mutex.lock t.completions_lock;
  let batch = Queue.copy t.completions in
  Queue.clear t.completions;
  Mutex.unlock t.completions_lock;
  Queue.iter
    (fun (cid, qid, frame) ->
       match Hashtbl.find_opt t.clients cid with
       | Some client ->
         Hashtbl.remove client.pending qid;
         Queue.add frame client.outq
       | None -> ())
    batch

let drain_wake_pipe t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r b 0 (Bytes.length b) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | n -> if n = Bytes.length b then go ()
  in
  go ()

(* --- the loop ------------------------------------------------------------- *)

let run t =
  let finished = ref false in
  while not !finished do
    (* external stop (signal) behaves like a shutdown verb *)
    if Atomic.get t.stop_requested && not t.draining then begin
      log t "stop requested";
      t.draining <- true;
      Scheduler.set_draining t.sched
    end;
    deliver_completions t;
    Scheduler.tick t.sched;
    (* shutdown completes once all work has drained *)
    if t.draining && Scheduler.quiescent t.sched then begin
      Mutex.lock t.completions_lock;
      let empty = Queue.is_empty t.completions in
      Mutex.unlock t.completions_lock;
      if empty then begin
        List.iter
          (fun (cid, id) ->
             match Hashtbl.find_opt t.clients cid with
             | Some client ->
               enqueue_frame client (Protocol.ok_reply ~id ~verb:"shutdown")
             | None -> ())
          (List.rev t.shutdown_waiters);
        t.shutdown_waiters <- [];
        (* last flush; clients that cannot take the bytes now lose them *)
        Hashtbl.iter (fun _ c -> ignore (flush_client c)) t.clients;
        let still_pending =
          Hashtbl.fold
            (fun _ c acc -> acc || not (Queue.is_empty c.outq))
            t.clients false
        in
        if not still_pending then finished := true
      end
    end;
    if not !finished then begin
      let client_fds =
        Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.clients []
      in
      let reads =
        if t.draining then t.wake_r :: client_fds
        else (t.wake_r :: t.listeners) @ client_fds
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
             if Queue.is_empty c.outq then acc else c.fd :: acc)
          t.clients []
      in
      match Unix.select reads writes [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
        if List.mem t.wake_r readable then drain_wake_pipe t;
        List.iter
          (fun lfd -> if List.mem lfd readable then accept_client t lfd)
          t.listeners;
        (* snapshot: handlers may drop clients from the table *)
        let by_fd fd =
          Hashtbl.fold
            (fun _ c acc -> if c.fd = fd then Some c else acc)
            t.clients None
        in
        List.iter
          (fun fd ->
             match by_fd fd with
             | Some c -> if not (flush_client c) then drop_client t c "write"
             | None -> ())
          writable;
        List.iter
          (fun fd ->
             if fd <> t.wake_r && not (List.mem fd t.listeners) then
               match by_fd fd with
               | Some c -> read_client t c
               | None -> ())
          readable
    end
  done;
  (* teardown *)
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  Hashtbl.reset t.clients;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (match t.unix_path with
   | Some p -> (try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
   | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Scheduler.shutdown t.sched;
  log t "bye"
