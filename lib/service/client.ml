(* Blocking satd client.  See client.mli for the contract. *)

module J = Sat.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable next_id : int;
}

let of_fd fd = { fd; ic = Unix.in_channel_of_descr fd; next_id = 0 }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  of_fd fd

let connect_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  of_fd fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t frame =
  let len = String.length frame in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring t.fd frame !off (len - !off)
  done

let send t json = send_raw t (J.to_string json ^ "\n")

let recv t =
  match J.read_frame t.ic with
  | None -> Error "connection closed"
  | Some (Error e) -> Error e
  | Some (Ok json) -> Protocol.reply_of_json json

let rpc t json =
  send t json;
  recv t

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  Printf.sprintf "q%d" id

let solve t params = rpc t (Protocol.solve_request ~id:(fresh_id t) params)
let ping t = rpc t (Protocol.ping_request ~id:(fresh_id t))
let stats t = rpc t (Protocol.stats_request ~id:(fresh_id t))
let shutdown t = rpc t (Protocol.shutdown_request ~id:(fresh_id t))
