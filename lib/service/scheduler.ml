(* Domain-pool query scheduler.  See scheduler.mli for the contract. *)

module J = Sat.Json
module T = Sat.Types

type answer = {
  outcome : T.outcome;
  cached : bool;
  warm : bool;
  matched_prefix : int;
  time_s : float;
  conflicts : int;
  decisions : int;
}

type job = {
  params : Protocol.solve_params;
  deadline : float option;  (* absolute Monotime instant *)
  on_done : answer -> unit;
  mutable cancelled : bool;
  mutable timed_out : bool;
  mutable running : Sat.Session.t option;
      (* the session currently solving this job; both writes and the
         cancel/tick reads happen under the scheduler lock *)
  mutable stopper : bool Atomic.t option;
      (* the cancellation flag of a decomposed (cube-and-conquer) run;
         same locking discipline as [running] *)
}

type decompose = {
  threshold_clauses : int;
  decompose_jobs : int;
  depth : int;
  cutoff : int;
}

type submit_error = Overloaded | Draining

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;  (* workers wait here for queue items *)
  idle : Condition.t;  (* drain waits here for quiescence *)
  queue : job Queue.t;
  max_queue : int;
  max_conflicts_cap : int option;
  decompose : decompose option;
  autotune : bool;
  cache : Cache.t;
  njobs : int;
  mutable workers : unit Domain.t array;
  mutable active : job list;  (* jobs currently solving, for tick *)
  mutable inflight : int;
  mutable stop : bool;
  mutable draining : bool;
  (* counters, all under [lock] *)
  mutable queries : int;
  mutable cancelled_n : int;
  mutable timeouts : int;
  mutable overloaded_n : int;
  mutable errors : int;
  mutable peak_queue : int;
  mutable decomposed_n : int;
  mutable autotuned_n : int;
  (* per-tenant metric registries, under their own lock so a slow
     merge never blocks admission *)
  tenants_lock : Mutex.t;
  tenants : (string, Sat.Metrics.t) Hashtbl.t;
}

let queue_depth t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let inflight t =
  Mutex.lock t.lock;
  let n = t.inflight in
  Mutex.unlock t.lock;
  n

let jobs t = t.njobs
let cache t = t.cache

let draining t =
  Mutex.lock t.lock;
  let d = t.draining in
  Mutex.unlock t.lock;
  d

let set_draining t =
  Mutex.lock t.lock;
  t.draining <- true;
  Mutex.unlock t.lock

let quiescent t =
  Mutex.lock t.lock;
  let q = Queue.is_empty t.queue && t.inflight = 0 in
  Mutex.unlock t.lock;
  q

(* --- the worker ----------------------------------------------------------- *)

let combine_budget a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some p, Some q -> Some (min p q)

let finished t job answer counted =
  Mutex.lock t.lock;
  counted t;
  Mutex.unlock t.lock;
  job.on_done answer

let no_search outcome =
  {
    outcome;
    cached = false;
    warm = false;
    matched_prefix = 0;
    time_s = 0.;
    conflicts = 0;
    decisions = 0;
  }

(* merge one query's registry into its tenant's rollup *)
let roll_up t tenant reg =
  Mutex.lock t.tenants_lock;
  let into =
    match Hashtbl.find_opt t.tenants tenant with
    | Some m -> m
    | None ->
      let m = Sat.Metrics.create () in
      Hashtbl.add t.tenants tenant m;
      m
  in
  Sat.Metrics.merge_into ~into reg;
  Mutex.unlock t.tenants_lock

(* An oversized unbudgeted query bypasses the warm-session pool and is
   decomposed by cube-and-conquer across its own worker domains; the
   result still lands in the result cache. *)
let process_decomposed t job d ~expired ~full ~nclauses ~t0 =
  let p = job.params in
  let stopper = Atomic.make false in
  Mutex.lock t.lock;
  let dead = job.cancelled in
  if not dead then begin
    job.stopper <- Some stopper;
    t.active <- job :: t.active
  end;
  Mutex.unlock t.lock;
  if dead then
    finished t job
      (no_search (T.Unknown "cancelled"))
      (fun t -> t.cancelled_n <- t.cancelled_n + 1)
  else begin
    let f =
      Cnf.Formula.of_clauses
        (List.map Cnf.Clause.of_dimacs_list p.Protocol.clauses)
    in
    let reg = Sat.Metrics.create () in
    let options =
      { Sat.Conquer.default_options with
        Sat.Conquer.jobs = d.decompose_jobs;
        cube = { Sat.Cube.default_options with Sat.Cube.depth = d.depth };
        config = Cache.config t.cache;
        cutoff = d.cutoff;
        stop = Some stopper;
        metrics = Some reg }
    in
    let r = Sat.Conquer.solve ~options f in
    Mutex.lock t.lock;
    job.stopper <- None;
    t.active <- List.filter (fun j -> j != job) t.active;
    Mutex.unlock t.lock;
    let outcome =
      match r.Sat.Conquer.outcome with
      | T.Unknown "interrupted" when job.cancelled -> T.Unknown "cancelled"
      | T.Unknown "interrupted" when job.timed_out || expired () ->
        T.Unknown "timeout"
      | o -> o
    in
    if p.use_cache then
      Cache.store_result t.cache ~hash:full ~nclauses
        ~assumptions:p.assumptions outcome;
    roll_up t p.tenant reg;
    let st = r.Sat.Conquer.stats in
    finished t job
      {
        outcome;
        cached = false;
        warm = false;
        matched_prefix = 0;
        time_s = Sat.Monotime.now_s () -. t0;
        conflicts = st.T.conflicts;
        decisions = st.T.decisions;
      }
      (fun t ->
         t.queries <- t.queries + 1;
         t.decomposed_n <- t.decomposed_n + 1;
         match outcome with
         | T.Unknown "cancelled" -> t.cancelled_n <- t.cancelled_n + 1
         | T.Unknown "timeout" -> t.timeouts <- t.timeouts + 1
         | _ -> ())
  end

let process t job =
  let p = job.params in
  let expired () =
    match job.deadline with
    | Some d -> Sat.Monotime.now_s () > d
    | None -> false
  in
  if job.cancelled then
    finished t job
      (no_search (T.Unknown "cancelled"))
      (fun t -> t.cancelled_n <- t.cancelled_n + 1)
  else if expired () then
    finished t job
      (no_search (T.Unknown "timeout"))
      (fun t -> t.timeouts <- t.timeouts + 1)
  else begin
    let t0 = Sat.Monotime.now_s () in
    let nclauses = List.length p.clauses in
    let hashes = Fhash.prefix_hashes p.clauses in
    let full = hashes.(nclauses) in
    match
      if p.use_cache then
        Cache.find_result t.cache ~hash:full ~nclauses
          ~assumptions:p.assumptions
      else None
    with
    | Some outcome ->
      finished t job
        { (no_search outcome) with
          cached = true;
          time_s = Sat.Monotime.now_s () -. t0 }
        (fun t -> t.queries <- t.queries + 1)
    | None -> (
      match t.decompose with
      | Some d
        when nclauses >= d.threshold_clauses
             && p.assumptions = []
             && combine_budget p.max_conflicts t.max_conflicts_cap = None
             && p.max_decisions = None ->
        (* budgeted queries keep their exact budget semantics on the
           incremental path; only unbudgeted assumption-free bulk
           queries decompose *)
        process_decomposed t job d ~expired ~full ~nclauses ~t0
      | _ ->
      (* take a warm session holding a prefix, or start cold.  A cold
         unbudgeted query may be auto-tuned: measure the formula, pick
         restart schedule / inprocessing / guidance from the decision
         table (docs/TUNING.md) at jobs=1 — the engine choice is the
         scheduler's own.  Warm sessions keep their existing
         configuration: their value is the carried-over solver state. *)
      let autotune_cold () =
        if
          (not t.autotune)
          || combine_budget p.max_conflicts t.max_conflicts_cap <> None
          || p.max_decisions <> None
        then None
        else begin
          let f =
            Cnf.Formula.of_clauses
              (List.map Cnf.Clause.of_dimacs_list p.clauses)
          in
          let ft = Sat.Autotune.extract ~probes:16 f in
          let pol = Sat.Autotune.select ~jobs:1 ft in
          Some (f, pol)
        end
      in
      let sess, matched, tuned =
        match
          if p.use_cache then Cache.checkout t.cache hashes else None
        with
        | Some (sess, i) -> (sess, i, None)
        | None -> (
          match autotune_cold () with
          | Some (_, pol) as tuned ->
            let config =
              { (Cache.config t.cache) with
                T.restarts = pol.Sat.Autotune.restarts;
                inprocessing = pol.Sat.Autotune.inprocessing }
            in
            (Sat.Session.create ~config (), 0, tuned)
          | None ->
            (Sat.Session.create ~config:(Cache.config t.cache) (), 0, None))
      in
      let reg = Sat.Metrics.create () in
      Sat.Session.attach_metrics sess reg;
      (* grow the session to the full clause sequence *)
      let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
      List.iter
        (fun c ->
           Sat.Session.add_clause sess (List.map Cnf.Lit.of_dimacs c))
        (drop matched p.clauses);
      (* guidance seeds need the variables to exist, i.e. after the
         clauses are in *)
      (match tuned with
       | Some (f, pol) when pol.Sat.Autotune.guided ->
         Sat.Session.apply_guidance sess (Sat.Guide.of_formula f)
       | Some _ | None -> ());
      (* register for cancellation/deadline interrupts *)
      Mutex.lock t.lock;
      let dead = job.cancelled in
      if not dead then begin
        job.running <- Some sess;
        t.active <- job :: t.active
      end;
      Mutex.unlock t.lock;
      if dead then begin
        Sat.Session.clear_interrupt sess;
        if p.use_cache then
          Cache.checkin t.cache ~hash:full ~nclauses sess;
        finished t job
          (no_search (T.Unknown "cancelled"))
          (fun t -> t.cancelled_n <- t.cancelled_n + 1)
      end
      else begin
        let assumptions = List.map Cnf.Lit.of_dimacs p.assumptions in
        let max_conflicts =
          combine_budget p.max_conflicts t.max_conflicts_cap
        in
        let outcome =
          Sat.Session.solve ~assumptions ?max_conflicts
            ?max_decisions:p.max_decisions sess
        in
        (* deregister; any interrupt issued from here on targets nobody
           and is withdrawn below before the session is pooled *)
        Mutex.lock t.lock;
        job.running <- None;
        t.active <- List.filter (fun j -> j != job) t.active;
        Mutex.unlock t.lock;
        Sat.Session.clear_interrupt sess;
        let outcome =
          match outcome with
          | T.Unknown "interrupted" when job.cancelled ->
            T.Unknown "cancelled"
          | T.Unknown "interrupted" when job.timed_out || expired () ->
            T.Unknown "timeout"
          | o -> o
        in
        let st = Sat.Session.last_stats sess in
        let answer =
          {
            outcome;
            cached = false;
            warm = matched > 0;
            matched_prefix = matched;
            time_s = Sat.Monotime.now_s () -. t0;
            conflicts = st.T.conflicts;
            decisions = st.T.decisions;
          }
        in
        if p.use_cache then begin
          Cache.store_result t.cache ~hash:full ~nclauses
            ~assumptions:p.assumptions outcome;
          Cache.checkin t.cache ~hash:full ~nclauses sess
        end;
        roll_up t p.tenant reg;
        finished t job answer (fun t ->
            t.queries <- t.queries + 1;
            if tuned <> None then t.autotuned_n <- t.autotuned_n + 1;
            (match outcome with
             | T.Unknown "cancelled" -> t.cancelled_n <- t.cancelled_n + 1
             | T.Unknown "timeout" -> t.timeouts <- t.timeouts + 1
             | _ -> ()))
      end)
  end

let worker t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* stop requested and nothing left to do *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      t.inflight <- t.inflight + 1;
      Mutex.unlock t.lock;
      (try process t job
       with e ->
         (* the query dies, the worker and the daemon survive *)
         Mutex.lock t.lock;
         t.errors <- t.errors + 1;
         job.running <- None;
         job.stopper <- None;
         t.active <- List.filter (fun j -> j != job) t.active;
         Mutex.unlock t.lock;
         (try
            job.on_done
              (no_search
                 (T.Unknown ("error: " ^ Printexc.to_string e)))
          with _ -> ()));
      Mutex.lock t.lock;
      t.inflight <- t.inflight - 1;
      if t.inflight = 0 && Queue.is_empty t.queue then
        Condition.broadcast t.idle;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

(* --- lifecycle ------------------------------------------------------------ *)

let create ?jobs ?(max_queue = 128) ?max_conflicts_cap ?decompose
    ?(autotune = false) ?cache () =
  let njobs =
    match jobs with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      max_queue;
      max_conflicts_cap;
      decompose;
      autotune;
      cache = (match cache with Some c -> c | None -> Cache.create ());
      njobs;
      workers = [||];
      active = [];
      inflight = 0;
      stop = false;
      draining = false;
      queries = 0;
      cancelled_n = 0;
      timeouts = 0;
      overloaded_n = 0;
      errors = 0;
      peak_queue = 0;
      decomposed_n = 0;
      autotuned_n = 0;
      tenants_lock = Mutex.create ();
      tenants = Hashtbl.create 8;
    }
  in
  t.workers <- Array.init njobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ?deadline ~on_done params =
  let job =
    {
      params;
      deadline;
      on_done;
      cancelled = false;
      timed_out = false;
      running = None;
      stopper = None;
    }
  in
  Mutex.lock t.lock;
  let verdict =
    if t.draining || t.stop then Error Draining
    else if Queue.length t.queue >= t.max_queue then begin
      t.overloaded_n <- t.overloaded_n + 1;
      Error Overloaded
    end
    else begin
      Queue.add job t.queue;
      t.peak_queue <- max t.peak_queue (Queue.length t.queue);
      Condition.signal t.nonempty;
      Ok job
    end
  in
  Mutex.unlock t.lock;
  verdict

let cancel t job =
  Mutex.lock t.lock;
  if not job.cancelled then begin
    job.cancelled <- true;
    (match job.running with
     | Some sess -> Sat.Session.interrupt sess
     | None -> ());
    match job.stopper with
    | Some s -> Atomic.set s true
    | None -> ()
  end;
  Mutex.unlock t.lock

let tick t =
  let now = Sat.Monotime.now_s () in
  Mutex.lock t.lock;
  List.iter
    (fun job ->
       match job.deadline with
       | Some d when now > d && not job.timed_out && not job.cancelled ->
         job.timed_out <- true;
         (match job.running with
          | Some sess -> Sat.Session.interrupt sess
          | None -> ());
         (match job.stopper with
          | Some s -> Atomic.set s true
          | None -> ())
       | _ -> ())
    t.active;
  Mutex.unlock t.lock

let solve t params =
  let m = Mutex.create () in
  let c = Condition.create () in
  let cell = ref None in
  let on_done a =
    Mutex.lock m;
    cell := Some a;
    Condition.signal c;
    Mutex.unlock m
  in
  match submit t ~on_done params with
  | Error e -> Error e
  | Ok _ ->
    Mutex.lock m;
    while Option.is_none !cell do
      Condition.wait c m
    done;
    Mutex.unlock m;
    Ok (Option.get !cell)

let drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  while not (Queue.is_empty t.queue && t.inflight = 0) do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let shutdown t =
  drain t;
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* --- stats ---------------------------------------------------------------- *)

let stats_json t =
  Mutex.lock t.lock;
  let service =
    J.Obj
      [
        ("jobs", J.Int t.njobs);
        ("queries", J.Int t.queries);
        ("cancelled", J.Int t.cancelled_n);
        ("timeouts", J.Int t.timeouts);
        ("overloaded", J.Int t.overloaded_n);
        ("errors", J.Int t.errors);
        ("decomposed", J.Int t.decomposed_n);
        ("autotuned", J.Int t.autotuned_n);
        ("queue_depth", J.Int (Queue.length t.queue));
        ("peak_queue_depth", J.Int t.peak_queue);
        ("inflight", J.Int t.inflight);
        ("draining", J.Bool t.draining);
      ]
  in
  Mutex.unlock t.lock;
  Mutex.lock t.tenants_lock;
  let tenants =
    Hashtbl.fold
      (fun name reg acc -> (name, Sat.Metrics.to_json reg) :: acc)
      t.tenants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Mutex.unlock t.tenants_lock;
  J.Obj
    [
      ("service", service);
      ("cache", Cache.stats_json t.cache);
      ("tenants", J.Obj tenants);
    ]
