(* Wire protocol encoder/decoder.  See protocol.mli and docs/SATD.md. *)

module J = Sat.Json

let version = 1

type solve_params = {
  clauses : int list list;
  nvars : int;
  assumptions : int list;
  max_conflicts : int option;
  max_decisions : int option;
  timeout_ms : int option;
  tenant : string;
  use_cache : bool;
}

let max_var_of clauses =
  List.fold_left
    (fun m c -> List.fold_left (fun m l -> max m (abs l)) m c)
    0 clauses

let mk_solve ?nvars ?(assumptions = []) ?max_conflicts ?max_decisions
    ?timeout_ms ?(tenant = "default") ?(use_cache = true) clauses =
  let nvars =
    match nvars with Some n -> n | None -> max_var_of clauses
  in
  {
    clauses;
    nvars;
    assumptions;
    max_conflicts;
    max_decisions;
    timeout_ms;
    tenant;
    use_cache;
  }

type request =
  | Solve of solve_params
  | Cancel of string
  | Stats
  | Ping
  | Shutdown

type error_code =
  | Parse_error
  | Bad_request
  | Overloaded
  | Shutting_down
  | Too_large
  | Internal

let error_code_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Too_large -> "too_large"
  | Internal -> "internal"

let error_code_of_string = function
  | "parse_error" -> Some Parse_error
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "shutting_down" -> Some Shutting_down
  | "too_large" -> Some Too_large
  | "internal" -> Some Internal
  | _ -> None

(* --- decoding requests ---------------------------------------------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let get_string field j =
  match J.member field j with
  | Some (J.String s) -> Some s
  | Some _ -> fail "field %s must be a string" field
  | None -> None

let get_int field j =
  match J.member field j with
  | Some (J.Int i) -> Some i
  | Some _ -> fail "field %s must be an integer" field
  | None -> None

let get_bool field j =
  match J.member field j with
  | Some (J.Bool b) -> Some b
  | Some _ -> fail "field %s must be a boolean" field
  | None -> None

let lit_of_json field = function
  | J.Int 0 -> fail "field %s: 0 is not a DIMACS literal" field
  | J.Int i -> i
  | _ -> fail "field %s must contain integers" field

let get_lits field j =
  match J.member field j with
  | None -> None
  | Some (J.List l) -> Some (List.map (lit_of_json field) l)
  | Some _ -> fail "field %s must be a list" field

let clauses_of_dimacs text =
  match Cnf.Dimacs.parse_string text with
  | exception Cnf.Dimacs.Parse_error m -> fail "dimacs: %s" m
  | f ->
    let out = ref [] in
    Cnf.Formula.iter_clauses f (fun c ->
        out :=
          List.map Cnf.Lit.to_dimacs (Cnf.Clause.to_list c) :: !out);
    (List.rev !out, Cnf.Formula.nvars f)

let solve_of_json j =
  let clauses, dimacs_nvars =
    match (J.member "clauses" j, J.member "dimacs" j) with
    | Some _, Some _ -> fail "give clauses or dimacs, not both"
    | Some (J.List cs), None ->
      ( List.map
          (function
            | J.List lits -> List.map (lit_of_json "clauses") lits
            | _ -> fail "field clauses must be a list of lists")
          cs,
        0 )
    | Some _, None -> fail "field clauses must be a list"
    | None, Some (J.String text) -> clauses_of_dimacs text
    | None, Some _ -> fail "field dimacs must be a string"
    | None, None -> fail "solve needs a clauses or dimacs field"
  in
  let declared = match get_int "nvars" j with Some n -> n | None -> 0 in
  if declared < 0 then fail "nvars must be non-negative";
  let nvars = max declared (max dimacs_nvars (max_var_of clauses)) in
  let assumptions =
    match get_lits "assumptions" j with Some l -> l | None -> []
  in
  let pos_budget field =
    match get_int field j with
    | Some n when n < 0 -> fail "%s must be non-negative" field
    | v -> v
  in
  {
    clauses;
    nvars;
    assumptions;
    max_conflicts = pos_budget "max_conflicts";
    max_decisions = pos_budget "max_decisions";
    timeout_ms = pos_budget "timeout_ms";
    tenant =
      (match get_string "tenant" j with Some t -> t | None -> "default");
    use_cache =
      (match get_bool "cache" j with Some b -> b | None -> true);
  }

let request_of_json j =
  let id = try Option.value (get_string "id" j) ~default:"" with Bad _ -> "" in
  match
    (match j with
     | J.Obj _ -> ()
     | _ -> fail "request must be a JSON object");
    (match get_int "v" j with
     | Some v when v <> version -> fail "unsupported protocol version %d" v
     | _ -> ());
    match get_string "verb" j with
    | None -> fail "missing verb"
    | Some "solve" -> Solve (solve_of_json j)
    | Some "cancel" ->
      (match get_string "target" j with
       | Some t -> Cancel t
       | None -> fail "cancel needs a target field")
    | Some "stats" -> Stats
    | Some "ping" -> Ping
    | Some "shutdown" -> Shutdown
    | Some other -> fail "unknown verb %s" other
  with
  | req -> Ok (id, req)
  | exception Bad m -> Error (id, Bad_request, m)

(* --- encoding requests ---------------------------------------------------- *)

let base_request ~id verb rest =
  J.Obj (("v", J.Int version) :: ("id", J.String id)
         :: ("verb", J.String verb) :: rest)

let solve_request ~id p =
  let opt name v rest =
    match v with Some x -> (name, J.Int x) :: rest | None -> rest
  in
  base_request ~id "solve"
    (("clauses",
      J.List
        (List.map (fun c -> J.List (List.map (fun l -> J.Int l) c)) p.clauses))
     :: ("nvars", J.Int p.nvars)
     ::
     ((match p.assumptions with
       | [] -> []
       | l -> [ ("assumptions", J.List (List.map (fun x -> J.Int x) l)) ])
      @ opt "max_conflicts" p.max_conflicts
          (opt "max_decisions" p.max_decisions
             (opt "timeout_ms" p.timeout_ms
                [ ("tenant", J.String p.tenant);
                  ("cache", J.Bool p.use_cache) ]))))

let cancel_request ~id ~target =
  base_request ~id "cancel" [ ("target", J.String target) ]

let stats_request ~id = base_request ~id "stats" []
let ping_request ~id = base_request ~id "ping" []
let shutdown_request ~id = base_request ~id "shutdown" []

(* --- encoding replies ----------------------------------------------------- *)

type solve_result = {
  outcome : Sat.Types.outcome;
  cached : bool;
  warm : bool;
  matched_prefix : int;
  time_s : float;
  conflicts : int;
  decisions : int;
}

let model_json ~nvars m =
  J.List
    (List.init (max nvars (Array.length m)) (fun v ->
         let b = v < Array.length m && m.(v) in
         J.Int (if b then v + 1 else -(v + 1))))

let solve_reply ~id ~nvars r =
  let status, extra =
    match r.outcome with
    | Sat.Types.Sat m -> ("sat", [ ("model", model_json ~nvars m) ])
    | Sat.Types.Unsat -> ("unsat", [])
    | Sat.Types.Unsat_assuming core ->
      ( "unsat",
        [ ("core",
           J.List
             (List.map (fun l -> J.Int (Cnf.Lit.to_dimacs l)) core)) ] )
    | Sat.Types.Unknown why -> ("unknown", [ ("reason", J.String why) ])
  in
  J.Obj
    (("id", J.String id) :: ("status", J.String status)
     :: extra
     @ [
         ("cached", J.Bool r.cached);
         ("warm", J.Bool r.warm);
         ("prefix", J.Int r.matched_prefix);
         ("time_s", J.Float r.time_s);
         ("conflicts", J.Int r.conflicts);
         ("decisions", J.Int r.decisions);
       ])

let ok_reply ~id ~verb =
  J.Obj
    [ ("id", J.String id); ("status", J.String "ok"); ("verb", J.String verb) ]

let stats_reply ~id ~data =
  J.Obj
    [
      ("id", J.String id);
      ("status", J.String "ok");
      ("verb", J.String "stats");
      ("data", data);
    ]

let error_reply ~id code msg =
  J.Obj
    [
      ("id", J.String id);
      ("status", J.String "error");
      ("code", J.String (error_code_string code));
      ("message", J.String msg);
    ]

(* --- decoding replies ----------------------------------------------------- *)

type reply = {
  r_id : string;
  r_status : string;
  r_model : bool array option;
  r_reason : string option;
  r_error : (error_code * string) option;
  r_cached : bool;
  r_warm : bool;
  r_time_s : float;
  r_data : J.t option;
  r_raw : J.t;
}

let reply_of_json j =
  match
    let status =
      match get_string "status" j with
      | Some s -> s
      | None -> fail "reply has no status"
    in
    let model =
      match J.member "model" j with
      | None -> None
      | Some (J.List lits) ->
        let lits = List.map (lit_of_json "model") lits in
        let n = List.fold_left (fun m l -> max m (abs l)) 0 lits in
        let a = Array.make n false in
        List.iter (fun l -> if l > 0 then a.(l - 1) <- true) lits;
        Some a
      | Some _ -> fail "model must be a list"
    in
    let error =
      if status = "error" then
        let code =
          match get_string "code" j with
          | Some c ->
            (match error_code_of_string c with
             | Some c -> c
             | None -> fail "unknown error code %s" c)
          | None -> fail "error reply has no code"
        in
        Some (code, Option.value (get_string "message" j) ~default:"")
      else None
    in
    {
      r_id = Option.value (get_string "id" j) ~default:"";
      r_status = status;
      r_model = model;
      r_reason = get_string "reason" j;
      r_error = error;
      r_cached = Option.value (get_bool "cached" j) ~default:false;
      r_warm = Option.value (get_bool "warm" j) ~default:false;
      r_time_s =
        (match J.member "time_s" j with
         | Some v -> Option.value (J.to_float v) ~default:0.
         | None -> 0.);
      r_data = J.member "data" j;
      r_raw = j;
    }
  with
  | r -> Ok r
  | exception Bad m -> Error m
