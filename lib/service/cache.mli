(** Result cache and warm-session pool, keyed by formula chain hash.

    Two layers, both behind one mutex (every operation is safe from any
    worker domain):

    - the {e result cache} maps (full chain hash, assumptions) to a
      definitive outcome, so an exact repeat of an already-answered
      query is served without any search ([Unknown] outcomes are never
      stored);
    - the {e session pool} maps a chain hash to an idle {!Sat.Session}
      holding exactly that clause sequence — learned clauses, variable
      activities and saved phases intact.  {!checkout} finds the
      longest pooled prefix of an incoming clause sequence, so a grown
      query (a BMC unrolling one frame deeper, a miter with one more
      output cone) resumes a warm solver instead of starting cold.

    Sessions are exclusively owned while checked out; {!checkin}
    returns them under the hash of the clause sequence they now hold.
    Both layers evict oldest-first at a fixed capacity.  Chain-hash
    collisions are guarded by storing the clause count next to each
    entry and requiring it to match on lookup. *)

type t

val create :
  ?max_results:int ->
  ?max_sessions:int ->
  ?config:Sat.Types.config ->
  unit ->
  t
(** Defaults: 4096 cached results, 64 pooled sessions, default solver
    configuration for sessions created by the scheduler ({!config}). *)

val config : t -> Sat.Types.config
(** The solver configuration pooled sessions are created with. *)

(* --- result cache -------------------------------------------------------- *)

val find_result :
  t ->
  hash:Fhash.t ->
  nclauses:int ->
  assumptions:int list ->
  Sat.Types.outcome option
(** Cached definitive outcome of an identical earlier query, if any.
    [assumptions] participate in the key (order-insensitively). *)

val store_result :
  t ->
  hash:Fhash.t ->
  nclauses:int ->
  assumptions:int list ->
  Sat.Types.outcome ->
  unit
(** Stores a definitive outcome.  [Unknown] outcomes are ignored — a
    budget-limited answer must never mask a later real solve. *)

(* --- warm session pool --------------------------------------------------- *)

val checkout : t -> Fhash.t array -> (Sat.Session.t * int) option
(** [checkout t prefix_hashes] removes and returns the pooled session
    matching the longest prefix of the clause sequence whose
    {!Fhash.prefix_hashes} are given, together with the number of
    clauses that session already holds.  [None] when no prefix is
    pooled. *)

val checkin : t -> hash:Fhash.t -> nclauses:int -> Sat.Session.t -> unit
(** Returns a session to the pool under the chain hash of the clause
    sequence it now holds.  May evict the oldest pooled session. *)

(* --- introspection ------------------------------------------------------- *)

type stats = {
  result_hits : int;
  result_misses : int;
  warm_hits : int;  (** checkouts that found a pooled prefix *)
  cold_misses : int;  (** checkouts that found nothing *)
  results_stored : int;  (** current size of the result cache *)
  sessions_pooled : int;  (** current size of the session pool *)
  results_evicted : int;
  sessions_evicted : int;
}

val stats : t -> stats
val stats_json : t -> Sat.Json.t
