(* Result cache + warm-session pool.  See cache.mli for the contract. *)

module J = Sat.Json

type result_entry = {
  r_nclauses : int;  (* collision guard: hash match alone is not enough *)
  r_outcome : Sat.Types.outcome;
}

type session_entry = {
  s_nclauses : int;
  s_session : Sat.Session.t;
  s_stamp : int;  (* insertion order, for oldest-first eviction *)
}

type t = {
  lock : Mutex.t;
  cfg : Sat.Types.config;
  max_results : int;
  max_sessions : int;
  results : (string, result_entry) Hashtbl.t;
  result_order : string Queue.t;  (* insertion order for eviction *)
  sessions : (Fhash.t, session_entry) Hashtbl.t;
  mutable stamp : int;
  (* counters *)
  mutable result_hits : int;
  mutable result_misses : int;
  mutable warm_hits : int;
  mutable cold_misses : int;
  mutable results_evicted : int;
  mutable sessions_evicted : int;
}

let create ?(max_results = 4096) ?(max_sessions = 64)
    ?(config = Sat.Types.default) () =
  {
    lock = Mutex.create ();
    cfg = config;
    max_results;
    max_sessions;
    results = Hashtbl.create 256;
    result_order = Queue.create ();
    sessions = Hashtbl.create 64;
    stamp = 0;
    result_hits = 0;
    result_misses = 0;
    warm_hits = 0;
    cold_misses = 0;
    results_evicted = 0;
    sessions_evicted = 0;
  }

let config t = t.cfg

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- result cache -------------------------------------------------------- *)

let result_key ~hash ~assumptions =
  match assumptions with
  | [] -> Fhash.to_hex hash
  | l ->
    Fhash.to_hex hash ^ "/"
    ^ String.concat ","
        (List.map string_of_int (List.sort_uniq compare l))

let find_result t ~hash ~nclauses ~assumptions =
  locked t (fun () ->
      match Hashtbl.find_opt t.results (result_key ~hash ~assumptions) with
      | Some e when e.r_nclauses = nclauses ->
        t.result_hits <- t.result_hits + 1;
        Some e.r_outcome
      | Some _ | None ->
        t.result_misses <- t.result_misses + 1;
        None)

let store_result t ~hash ~nclauses ~assumptions outcome =
  match outcome with
  | Sat.Types.Unknown _ -> ()
  | _ ->
    locked t (fun () ->
        let key = result_key ~hash ~assumptions in
        if not (Hashtbl.mem t.results key) then begin
          if Hashtbl.length t.results >= t.max_results then begin
            (* oldest-first; skip keys already displaced *)
            let rec evict () =
              match Queue.take_opt t.result_order with
              | None -> ()
              | Some k when Hashtbl.mem t.results k ->
                Hashtbl.remove t.results k;
                t.results_evicted <- t.results_evicted + 1
              | Some _ -> evict ()
            in
            evict ()
          end;
          Queue.add key t.result_order;
          Hashtbl.add t.results key
            { r_nclauses = nclauses; r_outcome = outcome }
        end)

(* --- warm session pool --------------------------------------------------- *)

let checkout t prefix_hashes =
  locked t (fun () ->
      let n = Array.length prefix_hashes in
      let rec find i =
        (* longest prefix first; index i of prefix_hashes = i clauses *)
        if i < 0 then None
        else
          match Hashtbl.find_opt t.sessions prefix_hashes.(i) with
          | Some e when e.s_nclauses = i ->
            Hashtbl.remove t.sessions prefix_hashes.(i);
            Some (e.s_session, i)
          | _ -> find (i - 1)
      in
      (* a 0-clause "prefix" is no warmer than a fresh session *)
      match find (n - 1) with
      | Some (_, 0) | None ->
        t.cold_misses <- t.cold_misses + 1;
        None
      | Some _ as hit ->
        t.warm_hits <- t.warm_hits + 1;
        hit)

let checkin t ~hash ~nclauses session =
  locked t (fun () ->
      if Hashtbl.length t.sessions >= t.max_sessions
         && not (Hashtbl.mem t.sessions hash)
      then begin
        (* evict the oldest entry *)
        let oldest = ref None in
        Hashtbl.iter
          (fun h e ->
             match !oldest with
             | Some (_, e') when e'.s_stamp <= e.s_stamp -> ()
             | _ -> oldest := Some (h, e))
          t.sessions;
        match !oldest with
        | Some (h, _) ->
          Hashtbl.remove t.sessions h;
          t.sessions_evicted <- t.sessions_evicted + 1
        | None -> ()
      end;
      t.stamp <- t.stamp + 1;
      (* last-in wins for an already-pooled hash: the incoming session
         just solved and has the fresher learned clauses *)
      Hashtbl.replace t.sessions hash
        { s_nclauses = nclauses; s_session = session; s_stamp = t.stamp })

(* --- introspection ------------------------------------------------------- *)

type stats = {
  result_hits : int;
  result_misses : int;
  warm_hits : int;
  cold_misses : int;
  results_stored : int;
  sessions_pooled : int;
  results_evicted : int;
  sessions_evicted : int;
}

let stats t =
  locked t (fun () ->
      {
        result_hits = t.result_hits;
        result_misses = t.result_misses;
        warm_hits = t.warm_hits;
        cold_misses = t.cold_misses;
        results_stored = Hashtbl.length t.results;
        sessions_pooled = Hashtbl.length t.sessions;
        results_evicted = t.results_evicted;
        sessions_evicted = t.sessions_evicted;
      })

let stats_json t =
  let s = stats t in
  J.Obj
    [
      ("hits", J.Int s.result_hits);
      ("misses", J.Int s.result_misses);
      ("warm_hits", J.Int s.warm_hits);
      ("cold_misses", J.Int s.cold_misses);
      ("results_stored", J.Int s.results_stored);
      ("sessions_pooled", J.Int s.sessions_pooled);
      ("results_evicted", J.Int s.results_evicted);
      ("sessions_evicted", J.Int s.sessions_evicted);
    ]
