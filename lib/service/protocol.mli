(** The [satd] wire protocol: line-delimited JSON frames.

    Every frame is exactly one JSON object on one [\n]-terminated line
    ({!Sat.Json.parse_line} is the reader contract).  Requests carry a
    [verb] and a client-chosen [id]; every reply echoes the [id] of the
    request it answers, so clients may pipeline.  The full verb set,
    field-by-field schema and error-code table are documented in
    [docs/SATD.md]; this module is the single encoder/decoder both the
    server and the client link against. *)

val version : int
(** Protocol version, [1].  Requests may carry ["v"]; a mismatch is
    refused with [Bad_request]. *)

(** {1 Requests} *)

type solve_params = {
  clauses : int list list;
      (** the formula, one clause per inner list, DIMACS literal
          convention (non-zero integers, sign = polarity) *)
  nvars : int;
      (** declared variable count; grown to the maximum variable
          mentioned by a clause, and models are padded to it *)
  assumptions : int list;  (** DIMACS literals assumed for this query *)
  max_conflicts : int option;  (** per-query budget *)
  max_decisions : int option;
  timeout_ms : int option;
      (** wall-clock deadline; an exceeded query is cooperatively
          interrupted and answers [unknown (timeout)] *)
  tenant : string;
      (** metrics-rollup key; per-tenant registries appear under this
          name in the [stats] reply (default ["default"]) *)
  use_cache : bool;
      (** when [false] the query bypasses the result cache and the
          warm-session pool (always solved from scratch, never stored) *)
}

val mk_solve :
  ?nvars:int ->
  ?assumptions:int list ->
  ?max_conflicts:int ->
  ?max_decisions:int ->
  ?timeout_ms:int ->
  ?tenant:string ->
  ?use_cache:bool ->
  int list list ->
  solve_params
(** [solve_params] with defaults: [nvars] = max variable mentioned, no
    assumptions, no budgets, tenant ["default"], cache on. *)

type request =
  | Solve of solve_params
  | Cancel of string  (** the [id] of an in-flight query on the same
                          connection *)
  | Stats
  | Ping
  | Shutdown  (** drain in-flight work, reply, then exit *)

(** {1 Error codes} *)

type error_code =
  | Parse_error  (** the frame is not a valid single-line JSON value *)
  | Bad_request  (** valid JSON, but not a valid request *)
  | Overloaded   (** admission control refused: the work queue is full *)
  | Shutting_down  (** the daemon is draining and admits no new work *)
  | Too_large    (** frame exceeds the server's size bound *)
  | Internal     (** the server failed; the query was not answered *)

val error_code_string : error_code -> string
val error_code_of_string : string -> error_code option

(** {1 Decoding requests (server side)} *)

val request_of_json :
  Sat.Json.t -> (string * request, string * error_code * string) result
(** [Ok (id, request)], or [Error (id, code, message)] where [id] is
    the request id when one could be recovered (so the error reply can
    still be correlated) and [""] otherwise. *)

(** {1 Encoding requests (client side)} *)

val solve_request : id:string -> solve_params -> Sat.Json.t
val cancel_request : id:string -> target:string -> Sat.Json.t
val stats_request : id:string -> Sat.Json.t
val ping_request : id:string -> Sat.Json.t
val shutdown_request : id:string -> Sat.Json.t

(** {1 Encoding replies (server side)} *)

type solve_result = {
  outcome : Sat.Types.outcome;
  cached : bool;       (** answered from the result cache, no search *)
  warm : bool;         (** solved on a pooled warm session *)
  matched_prefix : int;
      (** clauses already present in the warm session (0 when cold) *)
  time_s : float;      (** service time, excluding queueing *)
  conflicts : int;
  decisions : int;
}

val solve_reply : id:string -> nvars:int -> solve_result -> Sat.Json.t
(** Status [sat] (with a DIMACS-literal [model] padded to [nvars]),
    [unsat] (with a [core] field for assumption failures), or
    [unknown] (with a [reason]). *)

val ok_reply : id:string -> verb:string -> Sat.Json.t
val stats_reply : id:string -> data:Sat.Json.t -> Sat.Json.t
val error_reply : id:string -> error_code -> string -> Sat.Json.t

(** {1 Decoding replies (client side)} *)

type reply = {
  r_id : string;
  r_status : string;  (** [sat], [unsat], [unknown], [ok] or [error] *)
  r_model : bool array option;  (** present iff status [sat] *)
  r_reason : string option;  (** present iff status [unknown] *)
  r_error : (error_code * string) option;  (** present iff status [error] *)
  r_cached : bool;
  r_warm : bool;
  r_time_s : float;
  r_data : Sat.Json.t option;  (** the [stats] payload *)
  r_raw : Sat.Json.t;
}

val reply_of_json : Sat.Json.t -> (reply, string) result
