exception Parse_error of string

(* Single-pass buffer tokenizer: literals are parsed by direct character
   arithmetic on the input string, with no per-token substring and no
   split-into-lists — the per-clause [int list] handed to
   [Formula.add_dimacs] is the only steady-state allocation.  Substrings
   are materialised on error paths only, producing messages identical to
   the previous line/token-splitting parser. *)

(* what [String.trim] strips, minus '\n' (lines are '\n'-bounded) *)
let is_blank c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let parse_string text =
  let f = Formula.create () in
  let n = String.length text in
  (* current-clause accumulator, reused across clauses *)
  let buf = ref (Array.make 16 0) in
  let blen = ref 0 in
  let push_lit i =
    if !blen = Array.length !buf then begin
      let b = Array.make (2 * !blen) 0 in
      Array.blit !buf 0 b 0 !blen;
      buf := b
    end;
    !buf.(!blen) <- i;
    incr blen
  in
  let flush_clause () =
    let rec build k acc =
      if k < 0 then acc else build (k - 1) ((!buf).(k) :: acc)
    in
    Formula.add_dimacs f (build (!blen - 1) []);
    blen := 0
  in
  let bad_token t0 t1 =
    raise (Parse_error (Printf.sprintf "bad token %S" (String.sub text t0 (t1 - t0))))
  in
  (* decimal literal with optional sign; [0] terminates the clause *)
  let handle_token t0 t1 =
    let k = ref t0 in
    (match text.[t0] with '-' | '+' -> incr k | _ -> ());
    if !k >= t1 then bad_token t0 t1;
    let v = ref 0 in
    while !k < t1 do
      let c = text.[!k] in
      if c < '0' || c > '9' then bad_token t0 t1;
      v := (10 * !v) + (Char.code c - Char.code '0');
      incr k
    done;
    if !v = 0 then flush_clause ()
    else push_lit (if text.[t0] = '-' then - !v else !v)
  in
  (* header [p cnf <vars> <clauses>]: exactly four space-separated
     fields; the clause count is accepted unvalidated, as before *)
  let handle_header ls le =
    let fields = ref [] in
    let i = ref ls in
    while !i < le do
      while !i < le && text.[!i] = ' ' do incr i done;
      if !i < le then begin
        let t0 = !i in
        while !i < le && text.[!i] <> ' ' do incr i done;
        fields := String.sub text t0 (!i - t0) :: !fields
      end
    done;
    match List.rev !fields with
    | [ "p"; "cnf"; v; _ ] ->
      (match int_of_string_opt v with
       | Some nv ->
         for _ = Formula.nvars f to nv - 1 do
           ignore (Formula.fresh_var f)
         done
       | None -> raise (Parse_error "bad header"))
    | _ -> raise (Parse_error "bad header")
  in
  let pos = ref 0 in
  while !pos < n do
    let eol =
      match String.index_from_opt text !pos '\n' with Some e -> e | None -> n
    in
    (* trim the line in place *)
    let ls = ref !pos and le = ref eol in
    while !ls < !le && is_blank text.[!ls] do incr ls done;
    while !le > !ls && is_blank text.[!le - 1] do decr le done;
    if !ls < !le then begin
      match text.[!ls] with
      | 'c' | '%' -> ()
      | 'p' -> handle_header !ls !le
      | '0' .. '9' | '-' ->
        let i = ref !ls in
        while !i < !le do
          while !i < !le && (text.[!i] = ' ' || text.[!i] = '\t') do incr i done;
          if !i < !le then begin
            let t0 = !i in
            while !i < !le && text.[!i] <> ' ' && text.[!i] <> '\t' do
              incr i
            done;
            handle_token t0 !i
          end
        done
      | _ ->
        raise
          (Parse_error
             (Printf.sprintf "bad line %S" (String.sub text !ls (!le - !ls))))
    end;
    pos := eol + 1
  done;
  (* a clause missing its terminating 0 is flushed at end of input *)
  if !blen > 0 then flush_clause ();
  f

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

let to_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Formula.nvars f) (Formula.nclauses f));
  Formula.iter_clauses f (fun c ->
      Clause.to_list c
      |> List.iter (fun l -> Buffer.add_string buf (Lit.to_string l ^ " "));
      Buffer.add_string buf "0\n");
  Buffer.contents buf

let write_file path f =
  let oc = open_out path in
  output_string oc (to_string f);
  close_out oc
